// End-to-end tracing: a traced client against a live server over UDS
// loopback must produce a complete cross-layer timeline — client enqueue /
// wire / reply spans, server ring-wait / decide / encode spans, histogram
// exemplars linking the latency tail back to a trace ID — stitched together
// by StitchTrace. The overhead smoke (env-gated, run by `make check-obs`)
// additionally bounds the traced path's cost against the untraced one.
package server_test

import (
	"net"
	"os"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/policy"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/telemetry"
)

// traceHarness is one engine+server pair over a Unix socket with the full
// observability surface attached: a registry, a flight recorder with server
// and client component rings, and a traced client.
type traceHarness struct {
	eng    *engine.Engine
	srv    *server.Server
	reg    *telemetry.Registry
	fl     *telemetry.FlightRecorder
	client *telemetry.SpanRing
	sock   string
}

func newTraceHarness(t *testing.T, shards, capacity int) *traceHarness {
	t.Helper()
	h := &traceHarness{
		reg: telemetry.NewRegistry(),
		fl:  telemetry.NewFlightRecorder(),
	}
	h.client = h.fl.Ring("client", 256)
	eng, err := engine.New(engine.Config{
		Shards:   shards,
		Capacity: capacity,
		Schema:   diffSchema,
		Policy:   policy.MustParse(diffPolicies[0]),
		Flight:   h.fl.Ring("engine", 256),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	h.eng = eng
	srv, err := server.New(server.Config{
		Backend:   eng,
		Telemetry: h.reg,
		Flight:    h.fl.Ring("server", 256),
		Build:     "trace-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	h.srv = srv
	h.sock = t.TempDir() + "/trace.sock"
	l, err := net.Listen("unix", h.sock)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	return h
}

func (h *traceHarness) dial(t *testing.T, traceEvery int, seed int64) *client.Client {
	t.Helper()
	cli, info, err := client.Dial(client.Config{
		Network: "unix", Addr: h.sock,
		TraceEvery: traceEvery,
		Flight:     h.client,
		Seed:       seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cli.Close)
	if info.Version < 2 {
		t.Fatalf("server speaks v%d, tracing needs v2", info.Version)
	}
	return cli
}

func fillTable(t *testing.T, cli *client.Client, n int) {
	t.Helper()
	ops := make([]server.TableOp, 0, n)
	for i := 0; i < n; i++ {
		ops = append(ops, server.TableOp{Kind: server.TableUpsert, ID: uint32(i),
			Vals: []int64{int64(10 + i), int64(100 + i), int64(1000 + i)}})
	}
	sts, err := cli.Apply(ops, len(diffSchema.Attrs))
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range sts {
		if st != server.StatusOK {
			t.Fatalf("op %d: status %d", i, st)
		}
	}
}

// spanKinds collects the kinds present for one trace ID in one component.
func spanKinds(spans []telemetry.Span, traceID uint64) map[telemetry.SpanKind]telemetry.Span {
	out := make(map[telemetry.SpanKind]telemetry.Span)
	for _, s := range spans {
		if s.TraceID == traceID {
			out[s.Kind] = s
		}
	}
	return out
}

func TestTraceEndToEnd(t *testing.T) {
	h := newTraceHarness(t, 2, 64)
	cli := h.dial(t, 1, 42) // sample every call
	fillTable(t, cli, 32)

	keys := make([]uint64, 16)
	outs := make([]uint16, 16)
	for i := range keys {
		keys[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	var ti client.TraceInfo
	ids, err := cli.DecideTraced(keys, outs, nil, &ti)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(keys) {
		t.Fatalf("%d ids for %d keys", len(ids), len(keys))
	}
	if ti.ID == 0 {
		t.Fatal("TraceEvery=1 call was not sampled")
	}

	// Per-clock phase monotonicity. Client and server stamps come from the
	// same goroutine order within each process; cross-clock we only assert
	// the orderings a shared kernel clock (UDS loopback) guarantees: the
	// reply cannot be read before the server finished producing it.
	if ti.EnqueueNs > ti.SendNs || ti.SendNs > ti.ReplyNs {
		t.Fatalf("client stamps not monotonic: enqueue=%d send=%d reply=%d",
			ti.EnqueueNs, ti.SendNs, ti.ReplyNs)
	}
	tr := ti.Server
	if tr.ID != ti.ID {
		t.Fatalf("server echoed trace %#x, want %#x", tr.ID, ti.ID)
	}
	if tr.RecvNs > tr.AdmitNs || tr.AdmitNs > tr.StartNs || tr.StartNs > tr.DoneNs {
		t.Fatalf("server stamps not monotonic: recv=%d admit=%d start=%d done=%d",
			tr.RecvNs, tr.AdmitNs, tr.StartNs, tr.DoneNs)
	}
	if tr.DoneNs > ti.ReplyNs {
		t.Fatalf("reply (%d) observed before server done (%d)", ti.ReplyNs, tr.DoneNs)
	}
	if tr.RecvNs < ti.EnqueueNs {
		t.Fatalf("server recv (%d) before client enqueue (%d)", tr.RecvNs, ti.EnqueueNs)
	}

	// Both component rings must hold the call's spans under its trace ID.
	// The server worker records its spans after writing the reply, so the
	// client can observe the reply first — poll briefly for the server side.
	var comps map[string][]telemetry.Span
	var sk map[telemetry.SpanKind]telemetry.Span
	for deadline := time.Now().Add(2 * time.Second); ; {
		comps = h.fl.Snapshot()
		sk = spanKinds(comps["server"], ti.ID)
		if len(sk) >= 3 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	ck := spanKinds(comps["client"], ti.ID)
	for _, k := range []telemetry.SpanKind{telemetry.SpanEnqueue, telemetry.SpanWire, telemetry.SpanReply} {
		if _, ok := ck[k]; !ok {
			t.Errorf("client ring missing %v span for trace %#x", k, ti.ID)
		}
	}
	for _, k := range []telemetry.SpanKind{telemetry.SpanRingWait, telemetry.SpanDecide, telemetry.SpanEncode} {
		if _, ok := sk[k]; !ok {
			t.Errorf("server ring missing %v span for trace %#x", k, ti.ID)
		}
	}
	if got := sk[telemetry.SpanDecide]; got.Start != tr.StartNs || got.End != tr.DoneNs {
		t.Errorf("server decide span [%d,%d] disagrees with echoed stamps [%d,%d]",
			got.Start, got.End, tr.StartNs, tr.DoneNs)
	}

	// StitchTrace reassembles the full cross-layer timeline by trace ID.
	stitched := telemetry.StitchTrace(comps, ti.ID)
	if len(stitched) < 6 {
		t.Fatalf("stitched trace has %d spans, want >= 6 (client 3 + server 3)", len(stitched))
	}

	// Exemplar linkage: the server latency histogram must retain a trace ID
	// in the bucket the traced call landed in.
	snap := h.reg.Snapshot()
	hs, ok := snap["thanos_server_decide_latency_us"].(telemetry.HistogramSnapshot)
	if !ok {
		t.Fatalf("latency histogram missing from registry snapshot: %T", snap["thanos_server_decide_latency_us"])
	}
	if len(hs.Exemplars) == 0 {
		t.Fatal("latency histogram has no exemplars after a traced call")
	}
	found := false
	for _, ex := range hs.Exemplars {
		if ex == ti.ID {
			found = true
		}
	}
	if !found {
		t.Errorf("no exemplar equals trace %#x: %v", ti.ID, hs.Exemplars)
	}

	// Introspection reflects the live server.
	st := h.srv.Introspect()
	if st.Version != server.Version || st.Build != "trace-test" || len(st.Conns) == 0 {
		t.Errorf("introspect: version=%d build=%q conns=%d", st.Version, st.Build, len(st.Conns))
	}
	est := h.eng.Introspect()
	if est.Live != 2 || len(est.Shards) != 2 {
		t.Errorf("engine introspect: live=%d shards=%d", est.Live, len(est.Shards))
	}

	// Ping surfaces server identity over the wire.
	pong, err := cli.Ping()
	if err != nil {
		t.Fatal(err)
	}
	if pong.Build != "trace-test" || pong.UptimeNs == 0 {
		t.Errorf("pong: build=%q uptime=%d", pong.Build, pong.UptimeNs)
	}
}

// TestTraceSampling checks the 1-in-N sampling contract: deterministic per
// (seed, call index), exactly one sampled call per TraceEvery window, and
// identical ID sequences for identical seeds.
func TestTraceSampling(t *testing.T) {
	h := newTraceHarness(t, 1, 16)
	fillTable(t, h.dial(t, 0, 0), 8)

	run := func(seed int64) []uint64 {
		cli := h.dial(t, 4, seed)
		keys, outs := []uint64{1, 2}, []uint16{0, 0}
		var got []uint64
		for i := 0; i < 16; i++ {
			var ti client.TraceInfo
			if _, err := cli.DecideTraced(keys, outs, nil, &ti); err != nil {
				t.Fatal(err)
			}
			got = append(got, ti.ID)
		}
		return got
	}
	a, b := run(7), run(7)
	sampled := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: seed-7 runs disagree: %#x vs %#x", i, a[i], b[i])
		}
		if a[i] != 0 {
			sampled++
		}
		if (a[i] != 0) != ((i+1)%4 == 0) {
			t.Fatalf("call %d: sampled=%v, want every 4th call", i, a[i] != 0)
		}
	}
	if sampled != 4 {
		t.Fatalf("sampled %d of 16 calls with TraceEvery=4", sampled)
	}
	c := run(8)
	same := 0
	for i := range a {
		if a[i] != 0 && a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical trace IDs")
	}
}

// TestTracedReplyEncodeAllocs pins the traced reply's extra server work —
// trailer encoding, exemplar store, span records — at zero allocations in
// steady state, mirroring what serveTracedDecide does per traced frame.
func TestTracedReplyEncodeAllocs(t *testing.T) {
	pkts := make([]engine.Packet, 64)
	ring := telemetry.NewSpanRing("server", 64)
	var hist telemetry.Histogram
	tr := server.DecideTrace{ID: 0xabcd, RecvNs: 1, AdmitNs: 2, StartNs: 3, DoneNs: 4}
	buf := make([]byte, 0, 4096)
	if n := testing.AllocsPerRun(100, func() {
		buf = server.AppendDecidedTrace(buf[:0], 9, pkts, tr)
		hist.ObserveExemplar(17, tr.ID)
		ring.Record(telemetry.SpanRingWait, tr.ID, tr.AdmitNs, tr.StartNs, 64)
		ring.Record(telemetry.SpanDecide, tr.ID, tr.StartNs, tr.DoneNs, 64)
		ring.Record(telemetry.SpanEncode, tr.ID, tr.DoneNs, tr.DoneNs+1, 0)
	}); n != 0 {
		t.Fatalf("traced reply path allocates %.1f per run, want 0", n)
	}
}

// TestTracingOverheadSmoke bounds full-rate tracing's cost: the same client
// workload with TraceEvery=1 must stay within 5% of the untraced rate. The
// strict bound only applies under THANOS_CHECK_OBS=1 (the `make check-obs`
// CI job); otherwise the test is a short functional smoke, because a 5%
// wall-clock bound on a loaded shared machine is not a stable assertion.
func TestTracingOverheadSmoke(t *testing.T) {
	strict := os.Getenv("THANOS_CHECK_OBS") == "1"
	if testing.Short() {
		t.Skip("overhead smoke skipped in -short mode")
	}
	h := newTraceHarness(t, 2, 256)
	fillTable(t, h.dial(t, 0, 0), 128)

	window := 150 * time.Millisecond
	if strict {
		window = time.Second
	}
	keys := make([]uint64, 32)
	outs := make([]uint16, 32)
	for i := range keys {
		keys[i] = uint64(i+1) * 0x9e3779b97f4a7c15
	}
	measure := func(traceEvery int, seed int64) float64 {
		cli := h.dial(t, traceEvery, seed)
		var ids []int32
		// Warm the connection's request recycling before timing.
		for i := 0; i < 64; i++ {
			var err error
			if ids, err = cli.Decide(keys, outs, ids); err != nil {
				t.Fatal(err)
			}
		}
		start := time.Now()
		var n int
		for time.Since(start) < window {
			var err error
			if ids, err = cli.Decide(keys, outs, ids); err != nil {
				t.Fatal(err)
			}
			n += len(ids)
		}
		return float64(n) / time.Since(start).Seconds()
	}

	// Paired rounds, best ratio wins: each round measures untraced and
	// traced back to back, and the bound applies to the round where tracing
	// looked cheapest. True overhead shows up in every round; co-tenant load
	// bursts hit individual rounds, so best-of-N strips the noise without
	// loosening the bound on the real cost.
	rounds := 1
	if strict {
		rounds = 5
	}
	best, bestOff, bestOn := 0.0, 0.0, 0.0
	for i := 0; i < rounds; i++ {
		off := measure(0, int64(100+i))
		on := measure(1, int64(200+i))
		if on == 0 {
			t.Fatal("no traced throughput")
		}
		if r := on / off; r > best {
			best, bestOff, bestOn = r, off, on
		}
	}
	t.Logf("best round: untraced %.0f dec/s, traced %.0f dec/s, overhead %.2f%%",
		bestOff, bestOn, (1/best-1)*100)
	if strict && best < 0.95 {
		t.Fatalf("tracing overhead exceeds 5%% in every round: best untraced %.0f dec/s, traced %.0f dec/s",
			bestOff, bestOn)
	}
}
