// Package client is the Go client for the thanos decision-plane wire
// protocol. One Client owns one connection and pipelines requests over it:
// every request carries a client-assigned sequence number, a single reader
// goroutine matches replies back by that number, and a bounded inflight
// window provides client-side admission control mirroring the server's
// per-connection ring. Concurrent callers pipeline naturally — each blocks
// only on its own reply, not on the connection.
//
// Reconnection is explicit and deterministic: when the connection dies, every
// pending call fails with ErrConnReset and the next call redials under a
// seed-driven fault.Backoff schedule, so reconnect storms in tests replay
// exactly.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/server"
	"repro/internal/telemetry"
)

// ErrRejected reports a server Reject frame: the request was not executed
// because the server-side ring was full. Retry after backing off.
var ErrRejected = errors.New("client: request rejected (server busy)")

// ErrConnReset reports that the connection died while the request was in
// flight; the request may or may not have executed.
var ErrConnReset = errors.New("client: connection reset")

// ErrClosed reports a call after Close.
var ErrClosed = errors.New("client: closed")

// ErrRemote wraps an Err frame's message from the server.
var ErrRemote = errors.New("client: server error")

// DefaultMaxInflight is the default pipelining window.
const DefaultMaxInflight = 32

// Config configures Dial.
type Config struct {
	// Network and Addr name the server ("tcp", "host:port" or "unix",
	// "/path/to.sock").
	Network, Addr string
	// MaxInflight bounds requests awaiting replies; further calls block.
	// 0 selects DefaultMaxInflight.
	MaxInflight int
	// DialTimeout bounds each connection attempt. 0 means 5s.
	DialTimeout time.Duration
	// BackoffBase/BackoffMax shape the reconnect schedule (defaults
	// 1ms/500ms).
	BackoffBase, BackoffMax time.Duration
	// Seed drives reconnect jitter; the same seed replays the same schedule.
	Seed int64
	// MaxDialAttempts caps consecutive failed redials before a call reports
	// the dial error. 0 means 8.
	MaxDialAttempts int
	// TraceEvery samples 1 in every TraceEvery Decide calls for end-to-end
	// tracing: the sampled call's frame carries a deterministic trace ID
	// (derived from Seed and the call sequence) and the server echoes its
	// phase stamps in the reply. 0 disables sampling. Tracing additionally
	// requires the server to speak protocol v2 (checked via Hello), so a
	// traced client degrades cleanly against an old server.
	TraceEvery int
	// Flight, when non-nil, receives the client-side spans of traced calls
	// (enqueue, wire, reply) and reconnect events for the flight recorder.
	Flight *telemetry.SpanRing
}

// Client is a pipelined protocol client. Safe for concurrent use.
type Client struct {
	cfg Config
	sem chan struct{} // inflight window

	// traceSeq counts Decide calls for the deterministic 1-in-N sampling
	// decision; remoteVer holds the server's negotiated protocol version
	// (traced frames are only sent when it is >= 2).
	traceSeq  atomic.Uint64
	remoteVer atomic.Uint32

	// wmu serializes frame writes onto the socket. It is dedicated to I/O
	// and never held together with mu: state bookkeeping happens under mu,
	// then the write proceeds under wmu only, so a stalled socket never
	// blocks the demux or other callers' state transitions.
	wmu sync.Mutex

	rwg sync.WaitGroup // joins reader goroutines across reconnects

	mu      sync.Mutex // guards everything below
	nc      net.Conn
	bw      *bufio.Writer
	seq     uint32
	gen     int // connection generation; >1 means a reconnect happened
	pending map[uint32]chan reply
	bo      *fault.Backoff
	closed  bool
}

type reply struct {
	op   byte
	body []byte
	err  error
}

// Dial connects and performs the Hello handshake.
func Dial(cfg Config) (*Client, *server.HelloInfo, error) {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = DefaultMaxInflight
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 500 * time.Millisecond
	}
	if cfg.MaxDialAttempts <= 0 {
		cfg.MaxDialAttempts = 8
	}
	c := &Client{
		cfg: cfg,
		sem: make(chan struct{}, cfg.MaxInflight),
		bo:  fault.NewBackoff(cfg.BackoffBase, cfg.BackoffMax, cfg.Seed),
	}
	c.mu.Lock()
	err := c.connectLocked()
	c.mu.Unlock()
	if err != nil {
		return nil, nil, err
	}
	info, err := c.Hello()
	if err != nil {
		c.Close()
		return nil, nil, err
	}
	return c, &info, nil
}

// connectLocked dials one attempt and installs the connection. mu held.
func (c *Client) connectLocked() error {
	nc, err := net.DialTimeout(c.cfg.Network, c.cfg.Addr, c.cfg.DialTimeout)
	if err != nil {
		return err
	}
	c.nc = nc
	c.bw = bufio.NewWriter(nc)
	c.pending = make(map[uint32]chan reply)
	c.bo.Reset()
	c.gen++
	if c.gen > 1 {
		// Lock-free atomics only — safe under mu.
		c.cfg.Flight.Event(telemetry.EventReconnect, 0, time.Now().UnixNano(), int64(c.gen))
	}
	c.rwg.Add(1)
	go c.readLoop(nc)
	return nil
}

// readLoop demultiplexes replies for one connection generation. It exits when
// that connection dies, failing everything pending on it; Close joins it
// through rwg.
func (c *Client) readLoop(nc net.Conn) {
	defer c.rwg.Done()
	fr := server.NewFrameReader(nc, server.MaxPayload)
	for {
		op, seq, body, err := fr.Next()
		if err != nil {
			c.teardown(nc, err)
			return
		}
		// The reader's buffer is reused across frames; hand each waiter its
		// own copy.
		r := reply{op: op, body: append([]byte(nil), body...)}
		c.mu.Lock()
		if c.nc != nc {
			c.mu.Unlock()
			return
		}
		ch, ok := c.pending[seq]
		if ok {
			delete(c.pending, seq)
		}
		c.mu.Unlock()
		if ok {
			ch <- r
		}
	}
}

// teardown fails all requests pending on nc and marks the connection dead.
func (c *Client) teardown(nc net.Conn, cause error) {
	c.mu.Lock()
	if c.nc != nc {
		c.mu.Unlock()
		return
	}
	pend := c.pending
	c.nc, c.bw, c.pending = nil, nil, nil
	c.mu.Unlock()
	nc.Close()
	for _, ch := range pend {
		ch <- reply{err: fmt.Errorf("%w: %v", ErrConnReset, cause)}
	}
}

// roundTrip sends one frame built by build and waits for its reply. It
// redials (with deterministic backoff) when no connection is live, but never
// resends a request that was already written — the caller owns that retry
// decision, because table ops are not idempotent.
func (c *Client) roundTrip(build func(dst []byte, seq uint32) []byte) (reply, error) {
	return c.roundTripTrace(build, nil)
}

// roundTripTrace is roundTrip plus client-side phase stamps for a traced
// call: when ti is non-nil, it records entry (enqueue), post-write (send)
// and reply-received times on the client clock.
func (c *Client) roundTripTrace(build func(dst []byte, seq uint32) []byte, ti *TraceInfo) (reply, error) {
	if ti != nil {
		ti.EnqueueNs = time.Now().UnixNano()
	}
	c.sem <- struct{}{}
	defer func() { <-c.sem }()

	ch := make(chan reply, 1)
	var dialErr error
	for attempt := 0; ; attempt++ {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return reply{}, ErrClosed
		}
		if c.nc == nil {
			if attempt >= c.cfg.MaxDialAttempts {
				c.mu.Unlock()
				return reply{}, fmt.Errorf("client: redial failed after %d attempts: %w", attempt, dialErr)
			}
			dialErr = c.connectLocked()
			if dialErr != nil {
				d := c.bo.Next()
				c.mu.Unlock()
				time.Sleep(d)
				continue
			}
		}
		nc, bw := c.nc, c.bw
		c.seq++
		seq := c.seq
		c.pending[seq] = ch
		frame := build(nil, seq)
		c.mu.Unlock()

		// The socket write happens under the dedicated write lock only:
		// holding mu across Write/Flush would let one stalled socket block
		// the demux and every other caller's state transitions.
		c.wmu.Lock()
		_, werr := bw.Write(frame)
		if werr == nil {
			werr = bw.Flush()
		}
		c.wmu.Unlock()
		if ti != nil {
			ti.SendNs = time.Now().UnixNano()
		}
		if werr != nil {
			c.mu.Lock()
			if c.pending != nil {
				delete(c.pending, seq)
			}
			c.mu.Unlock()
			c.teardown(nc, werr)
			return reply{}, fmt.Errorf("%w: %v", ErrConnReset, werr)
		}

		r := <-ch
		if ti != nil {
			ti.ReplyNs = time.Now().UnixNano()
		}
		if r.err != nil {
			return reply{}, r.err
		}
		if r.op == server.OpReject {
			return reply{}, ErrRejected
		}
		if r.op == server.OpErr {
			msg, _ := server.DecodeErr(r.body)
			return reply{}, fmt.Errorf("%w: %s", ErrRemote, msg)
		}
		return r, nil
	}
}

// Hello performs the version/schema handshake.
func (c *Client) Hello() (server.HelloInfo, error) {
	r, err := c.roundTrip(func(dst []byte, seq uint32) []byte {
		return server.AppendHello(dst, seq, 0)
	})
	if err != nil {
		return server.HelloInfo{}, err
	}
	if r.op != server.OpHelloAck {
		return server.HelloInfo{}, fmt.Errorf("%w: op 0x%02x to hello", ErrRemote, r.op)
	}
	info, err := server.DecodeHelloAck(r.body)
	if err == nil {
		// Version gate for tracing: traced frames are only legal against a
		// v2+ server, so remember what the other side speaks.
		c.remoteVer.Store(uint32(info.Version))
	}
	return info, err
}

// TraceInfo is one traced Decide call's cross-layer timeline: the trace
// ID, the client-side phase stamps (this process's clock) and the server's
// echoed phase stamps (the server's clock). ID is zero when the call was
// not sampled — the other fields are then meaningless.
type TraceInfo struct {
	ID        uint64
	EnqueueNs int64 // call entered the client (before the inflight window)
	SendNs    int64 // frame written and flushed to the socket
	ReplyNs   int64 // reply received and decoded
	Server    server.DecideTrace
}

// splitmix64 is the trace-ID mixer: a full-period permutation of the call
// sequence, so IDs are deterministic per (seed, call index), well spread,
// and never collide within a run.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// nextTraceID makes the 1-in-N sampling decision for one Decide call and
// returns the call's trace ID (0 = not sampled). Deterministic for a given
// Config.Seed and call order.
func (c *Client) nextTraceID() uint64 {
	if c.cfg.TraceEvery <= 0 || c.remoteVer.Load() < 2 {
		return 0
	}
	n := c.traceSeq.Add(1)
	if n%uint64(c.cfg.TraceEvery) != 0 {
		return 0
	}
	id := splitmix64(uint64(c.cfg.Seed) ^ n)
	if id == 0 {
		id = 1
	}
	return id
}

// Decide runs one batched decision round: keys[i] is the flow key, outs[i]
// the policy output index. ids is reused when large enough; id -1 means no
// resource was selected. When trace sampling is configured the sampled
// calls are traced invisibly (the timeline goes to the flight ring); use
// DecideTraced to also receive the timeline.
func (c *Client) Decide(keys []uint64, outs []uint16, ids []int32) ([]int32, error) {
	return c.DecideTraced(keys, outs, ids, nil)
}

// DecideTraced is Decide plus trace capture: when the call is sampled (per
// Config.TraceEvery) and ti is non-nil, ti receives the stitched timeline.
// An unsampled call leaves ti.ID zero. The sampled path allocates only
// what Decide already allocates; client spans are additionally recorded
// into Config.Flight when set.
func (c *Client) DecideTraced(keys []uint64, outs []uint16, ids []int32, ti *TraceInfo) ([]int32, error) {
	if len(keys) != len(outs) {
		return ids[:0], fmt.Errorf("client: %d keys, %d outs", len(keys), len(outs))
	}
	traceID := c.nextTraceID()
	if traceID == 0 {
		if ti != nil {
			ti.ID = 0
		}
		r, err := c.roundTrip(func(dst []byte, seq uint32) []byte {
			return server.AppendDecide(dst, seq, keys, outs)
		})
		return c.finishDecide(r, err, ids, nil)
	}
	var local TraceInfo
	if ti == nil {
		ti = &local
	}
	ti.ID = traceID
	r, err := c.roundTripTrace(func(dst []byte, seq uint32) []byte {
		return server.AppendDecideTrace(dst, seq, keys, outs, traceID)
	}, ti)
	return c.finishDecide(r, err, ids, ti)
}

// finishDecide validates and decodes a Decided reply and, for a traced
// call, completes the timeline and records the client-side spans.
func (c *Client) finishDecide(r reply, err error, ids []int32, ti *TraceInfo) ([]int32, error) {
	if err != nil {
		return ids[:0], err
	}
	if r.op != server.OpDecided {
		return ids[:0], fmt.Errorf("%w: op 0x%02x to decide", ErrRemote, r.op)
	}
	ids, tr, err := server.DecodeDecided(r.body, server.MaxBatch, ids)
	if err != nil || ti == nil {
		return ids, err
	}
	ti.Server = tr
	flight := c.cfg.Flight
	flight.Record(telemetry.SpanEnqueue, ti.ID, ti.EnqueueNs, ti.SendNs, 0)
	// Wire and reply spans mix the two clocks; on one host (UDS, loopback)
	// they share a kernel clock, across hosts they carry the skew.
	flight.Record(telemetry.SpanWire, ti.ID, ti.SendNs, tr.RecvNs, 0)
	flight.Record(telemetry.SpanReply, ti.ID, tr.DoneNs, ti.ReplyNs, 0)
	return ids, nil
}

// Apply runs a batch of SMBM table ops and returns one status byte per op.
func (c *Client) Apply(ops []server.TableOp, dims int) ([]byte, error) {
	// Validate the encoding up front so roundTrip's builder cannot fail.
	if _, err := server.AppendTable(nil, 0, ops, dims); err != nil {
		return nil, err
	}
	r, err := c.roundTrip(func(dst []byte, seq uint32) []byte {
		frame, _ := server.AppendTable(dst, seq, ops, dims)
		return frame
	})
	if err != nil {
		return nil, err
	}
	if r.op != server.OpTableAck {
		return nil, fmt.Errorf("%w: op 0x%02x to table", ErrRemote, r.op)
	}
	return server.DecodeTableAck(r.body, server.MaxBatch, nil)
}

// SwapPolicy hot-swaps the served policy to the given DSL text.
func (c *Client) SwapPolicy(dsl string) error {
	r, err := c.roundTrip(func(dst []byte, seq uint32) []byte {
		return server.AppendSwap(dst, seq, dsl)
	})
	if err != nil {
		return err
	}
	if r.op != server.OpSwapAck {
		return fmt.Errorf("%w: op 0x%02x to swap", ErrRemote, r.op)
	}
	status, msg, err := server.DecodeSwapAck(r.body)
	if err != nil {
		return err
	}
	if status != server.StatusOK {
		return fmt.Errorf("%w: swap rejected: %s", ErrRemote, msg)
	}
	return nil
}

// Ping round-trips a liveness frame and returns the server's identity
// (uptime + build). A v1 server's empty Pong yields the zero PongInfo.
func (c *Client) Ping() (server.PongInfo, error) {
	r, err := c.roundTrip(func(dst []byte, seq uint32) []byte {
		return server.AppendPing(dst, seq)
	})
	if err != nil {
		return server.PongInfo{}, err
	}
	if r.op != server.OpPong {
		return server.PongInfo{}, fmt.Errorf("%w: op 0x%02x to ping", ErrRemote, r.op)
	}
	return server.DecodePong(r.body)
}

// Close tears the connection down; all pending calls fail with ErrConnReset
// and future calls fail with ErrClosed.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	nc := c.nc
	c.mu.Unlock()
	if nc != nil {
		c.teardown(nc, ErrClosed)
	}
	// Join the reader: closed is set, so no call can redial and spawn a new
	// generation, and teardown closed the socket, so the current reader's
	// blocking Next fails promptly.
	c.rwg.Wait()
}
