// Package client is the Go client for the thanos decision-plane wire
// protocol. One Client owns one connection and pipelines requests over it:
// every request carries a client-assigned sequence number, a single reader
// goroutine matches replies back by that number, and a bounded inflight
// window provides client-side admission control mirroring the server's
// per-connection ring. Concurrent callers pipeline naturally — each blocks
// only on its own reply, not on the connection.
//
// Reconnection is explicit and deterministic: when the connection dies, every
// pending call fails with ErrConnReset and the next call redials under a
// seed-driven fault.Backoff schedule, so reconnect storms in tests replay
// exactly.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/server"
)

// ErrRejected reports a server Reject frame: the request was not executed
// because the server-side ring was full. Retry after backing off.
var ErrRejected = errors.New("client: request rejected (server busy)")

// ErrConnReset reports that the connection died while the request was in
// flight; the request may or may not have executed.
var ErrConnReset = errors.New("client: connection reset")

// ErrClosed reports a call after Close.
var ErrClosed = errors.New("client: closed")

// ErrRemote wraps an Err frame's message from the server.
var ErrRemote = errors.New("client: server error")

// DefaultMaxInflight is the default pipelining window.
const DefaultMaxInflight = 32

// Config configures Dial.
type Config struct {
	// Network and Addr name the server ("tcp", "host:port" or "unix",
	// "/path/to.sock").
	Network, Addr string
	// MaxInflight bounds requests awaiting replies; further calls block.
	// 0 selects DefaultMaxInflight.
	MaxInflight int
	// DialTimeout bounds each connection attempt. 0 means 5s.
	DialTimeout time.Duration
	// BackoffBase/BackoffMax shape the reconnect schedule (defaults
	// 1ms/500ms).
	BackoffBase, BackoffMax time.Duration
	// Seed drives reconnect jitter; the same seed replays the same schedule.
	Seed int64
	// MaxDialAttempts caps consecutive failed redials before a call reports
	// the dial error. 0 means 8.
	MaxDialAttempts int
}

// Client is a pipelined protocol client. Safe for concurrent use.
type Client struct {
	cfg Config
	sem chan struct{} // inflight window

	// wmu serializes frame writes onto the socket. It is dedicated to I/O
	// and never held together with mu: state bookkeeping happens under mu,
	// then the write proceeds under wmu only, so a stalled socket never
	// blocks the demux or other callers' state transitions.
	wmu sync.Mutex

	rwg sync.WaitGroup // joins reader goroutines across reconnects

	mu      sync.Mutex // guards everything below
	nc      net.Conn
	bw      *bufio.Writer
	seq     uint32
	pending map[uint32]chan reply
	bo      *fault.Backoff
	closed  bool
}

type reply struct {
	op   byte
	body []byte
	err  error
}

// Dial connects and performs the Hello handshake.
func Dial(cfg Config) (*Client, *server.HelloInfo, error) {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = DefaultMaxInflight
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 500 * time.Millisecond
	}
	if cfg.MaxDialAttempts <= 0 {
		cfg.MaxDialAttempts = 8
	}
	c := &Client{
		cfg: cfg,
		sem: make(chan struct{}, cfg.MaxInflight),
		bo:  fault.NewBackoff(cfg.BackoffBase, cfg.BackoffMax, cfg.Seed),
	}
	c.mu.Lock()
	err := c.connectLocked()
	c.mu.Unlock()
	if err != nil {
		return nil, nil, err
	}
	info, err := c.Hello()
	if err != nil {
		c.Close()
		return nil, nil, err
	}
	return c, &info, nil
}

// connectLocked dials one attempt and installs the connection. mu held.
func (c *Client) connectLocked() error {
	nc, err := net.DialTimeout(c.cfg.Network, c.cfg.Addr, c.cfg.DialTimeout)
	if err != nil {
		return err
	}
	c.nc = nc
	c.bw = bufio.NewWriter(nc)
	c.pending = make(map[uint32]chan reply)
	c.bo.Reset()
	c.rwg.Add(1)
	go c.readLoop(nc)
	return nil
}

// readLoop demultiplexes replies for one connection generation. It exits when
// that connection dies, failing everything pending on it; Close joins it
// through rwg.
func (c *Client) readLoop(nc net.Conn) {
	defer c.rwg.Done()
	fr := server.NewFrameReader(nc, server.MaxPayload)
	for {
		op, seq, body, err := fr.Next()
		if err != nil {
			c.teardown(nc, err)
			return
		}
		// The reader's buffer is reused across frames; hand each waiter its
		// own copy.
		r := reply{op: op, body: append([]byte(nil), body...)}
		c.mu.Lock()
		if c.nc != nc {
			c.mu.Unlock()
			return
		}
		ch, ok := c.pending[seq]
		if ok {
			delete(c.pending, seq)
		}
		c.mu.Unlock()
		if ok {
			ch <- r
		}
	}
}

// teardown fails all requests pending on nc and marks the connection dead.
func (c *Client) teardown(nc net.Conn, cause error) {
	c.mu.Lock()
	if c.nc != nc {
		c.mu.Unlock()
		return
	}
	pend := c.pending
	c.nc, c.bw, c.pending = nil, nil, nil
	c.mu.Unlock()
	nc.Close()
	for _, ch := range pend {
		ch <- reply{err: fmt.Errorf("%w: %v", ErrConnReset, cause)}
	}
}

// roundTrip sends one frame built by build and waits for its reply. It
// redials (with deterministic backoff) when no connection is live, but never
// resends a request that was already written — the caller owns that retry
// decision, because table ops are not idempotent.
func (c *Client) roundTrip(build func(dst []byte, seq uint32) []byte) (reply, error) {
	c.sem <- struct{}{}
	defer func() { <-c.sem }()

	ch := make(chan reply, 1)
	var dialErr error
	for attempt := 0; ; attempt++ {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return reply{}, ErrClosed
		}
		if c.nc == nil {
			if attempt >= c.cfg.MaxDialAttempts {
				c.mu.Unlock()
				return reply{}, fmt.Errorf("client: redial failed after %d attempts: %w", attempt, dialErr)
			}
			dialErr = c.connectLocked()
			if dialErr != nil {
				d := c.bo.Next()
				c.mu.Unlock()
				time.Sleep(d)
				continue
			}
		}
		nc, bw := c.nc, c.bw
		c.seq++
		seq := c.seq
		c.pending[seq] = ch
		frame := build(nil, seq)
		c.mu.Unlock()

		// The socket write happens under the dedicated write lock only:
		// holding mu across Write/Flush would let one stalled socket block
		// the demux and every other caller's state transitions.
		c.wmu.Lock()
		_, werr := bw.Write(frame)
		if werr == nil {
			werr = bw.Flush()
		}
		c.wmu.Unlock()
		if werr != nil {
			c.mu.Lock()
			if c.pending != nil {
				delete(c.pending, seq)
			}
			c.mu.Unlock()
			c.teardown(nc, werr)
			return reply{}, fmt.Errorf("%w: %v", ErrConnReset, werr)
		}

		r := <-ch
		if r.err != nil {
			return reply{}, r.err
		}
		if r.op == server.OpReject {
			return reply{}, ErrRejected
		}
		if r.op == server.OpErr {
			msg, _ := server.DecodeErr(r.body)
			return reply{}, fmt.Errorf("%w: %s", ErrRemote, msg)
		}
		return r, nil
	}
}

// Hello performs the version/schema handshake.
func (c *Client) Hello() (server.HelloInfo, error) {
	r, err := c.roundTrip(func(dst []byte, seq uint32) []byte {
		return server.AppendHello(dst, seq, 0)
	})
	if err != nil {
		return server.HelloInfo{}, err
	}
	if r.op != server.OpHelloAck {
		return server.HelloInfo{}, fmt.Errorf("%w: op 0x%02x to hello", ErrRemote, r.op)
	}
	return server.DecodeHelloAck(r.body)
}

// Decide runs one batched decision round: keys[i] is the flow key, outs[i]
// the policy output index. ids is reused when large enough; id -1 means no
// resource was selected.
func (c *Client) Decide(keys []uint64, outs []uint16, ids []int32) ([]int32, error) {
	if len(keys) != len(outs) {
		return ids[:0], fmt.Errorf("client: %d keys, %d outs", len(keys), len(outs))
	}
	r, err := c.roundTrip(func(dst []byte, seq uint32) []byte {
		return server.AppendDecide(dst, seq, keys, outs)
	})
	if err != nil {
		return ids[:0], err
	}
	if r.op != server.OpDecided {
		return ids[:0], fmt.Errorf("%w: op 0x%02x to decide", ErrRemote, r.op)
	}
	return server.DecodeDecided(r.body, server.MaxBatch, ids)
}

// Apply runs a batch of SMBM table ops and returns one status byte per op.
func (c *Client) Apply(ops []server.TableOp, dims int) ([]byte, error) {
	// Validate the encoding up front so roundTrip's builder cannot fail.
	if _, err := server.AppendTable(nil, 0, ops, dims); err != nil {
		return nil, err
	}
	r, err := c.roundTrip(func(dst []byte, seq uint32) []byte {
		frame, _ := server.AppendTable(dst, seq, ops, dims)
		return frame
	})
	if err != nil {
		return nil, err
	}
	if r.op != server.OpTableAck {
		return nil, fmt.Errorf("%w: op 0x%02x to table", ErrRemote, r.op)
	}
	return server.DecodeTableAck(r.body, server.MaxBatch, nil)
}

// SwapPolicy hot-swaps the served policy to the given DSL text.
func (c *Client) SwapPolicy(dsl string) error {
	r, err := c.roundTrip(func(dst []byte, seq uint32) []byte {
		return server.AppendSwap(dst, seq, dsl)
	})
	if err != nil {
		return err
	}
	if r.op != server.OpSwapAck {
		return fmt.Errorf("%w: op 0x%02x to swap", ErrRemote, r.op)
	}
	status, msg, err := server.DecodeSwapAck(r.body)
	if err != nil {
		return err
	}
	if status != server.StatusOK {
		return fmt.Errorf("%w: swap rejected: %s", ErrRemote, msg)
	}
	return nil
}

// Ping round-trips a liveness frame.
func (c *Client) Ping() error {
	r, err := c.roundTrip(func(dst []byte, seq uint32) []byte {
		return server.AppendPing(dst, seq)
	})
	if err != nil {
		return err
	}
	if r.op != server.OpPong {
		return fmt.Errorf("%w: op 0x%02x to ping", ErrRemote, r.op)
	}
	return nil
}

// Close tears the connection down; all pending calls fail with ErrConnReset
// and future calls fail with ErrClosed.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	nc := c.nc
	c.mu.Unlock()
	if nc != nil {
		c.teardown(nc, ErrClosed)
	}
	// Join the reader: closed is set, so no call can redial and spawn a new
	// generation, and teardown closed the socket, so the current reader's
	// blocking Next fails promptly.
	c.rwg.Wait()
}
