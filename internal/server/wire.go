// Package server puts a serving frontend on the sharded decision engine: a
// length-prefixed batched binary protocol over TCP or Unix domain sockets
// carrying decision requests, SMBM table updates and live policy hot-swaps.
//
// # Framing
//
// Every message is one frame:
//
//	+-----------+--------+---------+----------------+
//	| u32 len   | u8 op  | u32 seq | body (len-5 B) |
//	+-----------+--------+---------+----------------+
//
// len counts everything after the length field (opcode + seq + body) and is
// capped at MaxPayload; integers are little-endian. seq is chosen by the
// client and echoed verbatim in the reply, which is what lets a client keep
// many batches in flight on one connection (pipelining) and still match
// answers — including out-of-band Reject frames — to requests.
//
// # Request/reply pairs
//
//	Decide  -> Decided    batched decisions: (key, out) pairs in, ids out
//	Table   -> TableAck   batched SMBM ops: add/update/upsert/delete
//	Swap    -> SwapAck    live policy hot-swap (DSL text)
//	Hello   -> HelloAck   version + schema handshake
//	Ping    -> Pong       liveness
//	any     -> Reject     admission control: the per-connection ring was
//	                      full; retry later (EAGAIN semantics)
//	any     -> Err        protocol error; the server closes the connection
//
// Flow-keyed routing is carried by the decision key itself: the server hands
// it unchanged to engine.DecideBatch, which steers key mod shards, so one
// flow's packets always execute on the same pipeline replica no matter which
// connection delivered them.
//
// # Trace context (protocol v2)
//
// A client that saw HelloAck.Version >= 2 may mark individual Decide frames
// as traced by setting TraceFlag (bit 15) in the leading count word and
// appending a u64 trace ID — the client makes the 1-in-N sampling decision,
// downstream just honors it. The server answers a traced Decide with a
// traced Decided: TraceFlag set and a trailing DecideTrace carrying the
// trace ID plus the server-side phase stamps (recv, ring admit, decide
// start, decide done), which lets the client stitch one cross-layer
// timeline without scraping the server. Untraced frames are byte-identical
// to protocol v1, and servers never send trace context unsolicited, so old
// peers interoperate unchanged. The Pong body (uptime + build) is also new
// in v2; v1's empty Pong still decodes.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/engine"
)

// Protocol constants. Version bumps whenever a frame layout changes.
const (
	// Version is the wire protocol version spoken by this package.
	// Version 2 adds optional trace context on Decide/Decided (TraceFlag)
	// and the Pong identity body; both are invisible to v1 peers, but a
	// client must see HelloAck.Version >= 2 before sending traced frames.
	Version = 2

	// MaxPayload caps one frame's payload (opcode + seq + body). Read paths
	// reject larger declared lengths before allocating anything.
	MaxPayload = 1 << 20

	// MaxBatch caps the ops in one Decide or Table frame.
	MaxBatch = 4096

	// TraceFlag marks a traced Decide/Decided body: set in the high bit of
	// the leading u16 count, it flags a trailing trace section (a u64 trace
	// ID on Decide; a DecideTrace record on Decided). The bit can never
	// collide with a real count because counts are capped at MaxBatch,
	// which is far below bit 15 — wireproto lint enforces that statically.
	TraceFlag = 0x8000

	// headerLen is opcode + seq, the fixed payload prefix.
	headerLen = 5
)

// Opcodes.
const (
	OpHello    = 0x01
	OpHelloAck = 0x02
	OpDecide   = 0x03
	OpDecided  = 0x04
	OpTable    = 0x05
	OpTableAck = 0x06
	OpSwap     = 0x07
	OpSwapAck  = 0x08
	OpPing     = 0x09
	OpPong     = 0x0A
	OpReject   = 0x0B
	OpErr      = 0x0C
)

// Table op kinds (TableOp.Kind).
const (
	TableAdd    = 0x01
	TableUpdate = 0x02
	TableUpsert = 0x03
	TableDelete = 0x04
)

// Per-op statuses in a TableAck body.
const (
	StatusOK      = 0x00 // applied to the authoritative table
	StatusInvalid = 0x01 // table validation rejected it (dup/missing id, full)
	StatusClosed  = 0x02 // engine closed
)

// Reject reasons.
const (
	// RejectBusy: the per-connection request ring was full. The request was
	// not executed; the client should back off and retry.
	RejectBusy = 0x01
)

// ErrFrameTooLarge reports a declared payload length over MaxPayload (or the
// reader's configured cap). The stream is unrecoverable past this point.
var ErrFrameTooLarge = errors.New("server: frame exceeds payload cap")

// ErrMalformed reports a body that does not parse under its opcode.
var ErrMalformed = errors.New("server: malformed frame body")

// TableOp is one decoded SMBM table operation.
type TableOp struct {
	Kind byte
	ID   uint32
	Vals []int64 // nil for TableDelete
}

// HelloInfo is the server identity carried by a HelloAck.
type HelloInfo struct {
	Version  uint16
	Dims     uint16 // metric dimensions per resource (schema width)
	Capacity uint32 // resource slots per replica table
	Shards   uint16 // pipeline replicas behind DecideBatch
	Outputs  uint16 // outputs of the currently served policy
}

// DecideTrace is the server-side trace context echoed on a traced Decided
// reply: the sampled request's trace ID plus the server's phase stamps
// (unix nanoseconds on the server clock). A zero ID means "untraced".
// The phases map onto the frame's life: Recv (frame decoded off the
// socket), Admit (admitted to the per-connection ring), Start (worker
// dequeued it and entered DecideBatch), Done (DecideBatch returned).
type DecideTrace struct {
	ID      uint64
	RecvNs  int64
	AdmitNs int64
	StartNs int64
	DoneNs  int64
}

// decideTraceLen is the wire size of a DecideTrace trailer.
const decideTraceLen = 40

// PongInfo is the server identity carried by a Pong reply: how long the
// server has been up and what build is serving. A v1 Pong has an empty
// body and decodes to the zero PongInfo.
type PongInfo struct {
	UptimeNs uint64
	Build    string
}

// --- encoding ---
// All encoders append one complete frame to dst and return the extended
// slice, so steady-state callers reuse one buffer with no per-frame
// allocation.

// appendHeader writes the length word and payload prefix for a frame whose
// body is bodyLen bytes.
func appendHeader(dst []byte, op byte, seq uint32, bodyLen int) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(headerLen+bodyLen))
	dst = append(dst, op)
	return binary.LittleEndian.AppendUint32(dst, seq)
}

// AppendFrame appends a raw frame with an opaque body.
func AppendFrame(dst []byte, op byte, seq uint32, body []byte) []byte {
	dst = appendHeader(dst, op, seq, len(body))
	return append(dst, body...)
}

// AppendHello appends a client handshake. dims is the schema width the
// client expects; zero means "any".
func AppendHello(dst []byte, seq uint32, dims uint16) []byte {
	dst = appendHeader(dst, OpHello, seq, 4)
	dst = binary.LittleEndian.AppendUint16(dst, Version)
	return binary.LittleEndian.AppendUint16(dst, dims)
}

// AppendHelloAck appends the server identity reply.
func AppendHelloAck(dst []byte, seq uint32, info HelloInfo) []byte {
	dst = appendHeader(dst, OpHelloAck, seq, 12)
	dst = binary.LittleEndian.AppendUint16(dst, info.Version)
	dst = binary.LittleEndian.AppendUint16(dst, info.Dims)
	dst = binary.LittleEndian.AppendUint32(dst, info.Capacity)
	dst = binary.LittleEndian.AppendUint16(dst, info.Shards)
	return binary.LittleEndian.AppendUint16(dst, info.Outputs)
}

// AppendDecide appends a batched decision request: len(keys) (key, out)
// pairs. keys and outs must have equal length, at most MaxBatch.
func AppendDecide(dst []byte, seq uint32, keys []uint64, outs []uint16) []byte {
	dst = appendHeader(dst, OpDecide, seq, 2+len(keys)*10)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(keys)))
	for i, k := range keys {
		dst = binary.LittleEndian.AppendUint64(dst, k)
		dst = binary.LittleEndian.AppendUint16(dst, outs[i])
	}
	return dst
}

// AppendDecideTrace appends a traced decision request: the same body as
// AppendDecide plus the TraceFlag count bit and a trailing u64 trace ID.
// traceID must be non-zero (zero means "untraced" everywhere) and the
// receiving server must have negotiated Version >= 2 via Hello.
func AppendDecideTrace(dst []byte, seq uint32, keys []uint64, outs []uint16, traceID uint64) []byte {
	dst = appendHeader(dst, OpDecide, seq, 2+len(keys)*10+8)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(keys))|TraceFlag)
	for i, k := range keys {
		dst = binary.LittleEndian.AppendUint64(dst, k)
		dst = binary.LittleEndian.AppendUint16(dst, outs[i])
	}
	return binary.LittleEndian.AppendUint64(dst, traceID)
}

// AppendDecided appends the decision reply for pkts: one i32 id per packet,
// -1 when no resource was selected (OK is recoverable as id >= 0).
func AppendDecided(dst []byte, seq uint32, pkts []engine.Packet) []byte {
	dst = appendHeader(dst, OpDecided, seq, 2+len(pkts)*4)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(pkts)))
	for i := range pkts {
		id := int32(pkts[i].ID)
		if !pkts[i].OK {
			id = -1
		}
		dst = binary.LittleEndian.AppendUint32(dst, uint32(id))
	}
	return dst
}

// AppendDecidedTrace appends a traced decision reply: the AppendDecided
// body plus the TraceFlag count bit and a trailing DecideTrace. Servers
// only send it in answer to a traced request, so v1 clients never see it.
func AppendDecidedTrace(dst []byte, seq uint32, pkts []engine.Packet, tr DecideTrace) []byte {
	dst = appendHeader(dst, OpDecided, seq, 2+len(pkts)*4+decideTraceLen)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(pkts))|TraceFlag)
	for i := range pkts {
		id := int32(pkts[i].ID)
		if !pkts[i].OK {
			id = -1
		}
		dst = binary.LittleEndian.AppendUint32(dst, uint32(id))
	}
	dst = binary.LittleEndian.AppendUint64(dst, tr.ID)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(tr.RecvNs))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(tr.AdmitNs))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(tr.StartNs))
	return binary.LittleEndian.AppendUint64(dst, uint64(tr.DoneNs))
}

// AppendTable appends a batched table-update request. Every non-delete op
// must carry exactly dims values.
func AppendTable(dst []byte, seq uint32, ops []TableOp, dims int) ([]byte, error) {
	if len(ops) > MaxBatch {
		return dst, fmt.Errorf("%w: %d table ops (max %d)", ErrMalformed, len(ops), MaxBatch)
	}
	body := 2
	for i := range ops {
		body += 5
		if ops[i].Kind != TableDelete {
			if len(ops[i].Vals) != dims {
				return dst, fmt.Errorf("%w: op %d has %d vals, schema has %d", ErrMalformed, i, len(ops[i].Vals), dims)
			}
			body += dims * 8
		}
	}
	dst = appendHeader(dst, OpTable, seq, body)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(ops)))
	for i := range ops {
		dst = append(dst, ops[i].Kind)
		dst = binary.LittleEndian.AppendUint32(dst, ops[i].ID)
		if ops[i].Kind != TableDelete {
			for _, v := range ops[i].Vals {
				dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
			}
		}
	}
	return dst, nil
}

// AppendTableAck appends per-op statuses.
func AppendTableAck(dst []byte, seq uint32, statuses []byte) []byte {
	dst = appendHeader(dst, OpTableAck, seq, 2+len(statuses))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(statuses)))
	return append(dst, statuses...)
}

// AppendSwap appends a policy hot-swap request; the body is the DSL text.
func AppendSwap(dst []byte, seq uint32, dsl string) []byte {
	dst = appendHeader(dst, OpSwap, seq, len(dsl))
	return append(dst, dsl...)
}

// AppendSwapAck appends a hot-swap reply: status 0 on success, otherwise a
// non-zero status followed by the error text.
func AppendSwapAck(dst []byte, seq uint32, status byte, msg string) []byte {
	dst = appendHeader(dst, OpSwapAck, seq, 1+len(msg))
	dst = append(dst, status)
	return append(dst, msg...)
}

// AppendReject appends an admission-control rejection for seq.
func AppendReject(dst []byte, seq uint32, reason byte) []byte {
	dst = appendHeader(dst, OpReject, seq, 1)
	return append(dst, reason)
}

// AppendErr appends a fatal protocol-error frame.
func AppendErr(dst []byte, seq uint32, msg string) []byte {
	dst = appendHeader(dst, OpErr, seq, len(msg))
	return append(dst, msg...)
}

// AppendPing appends a liveness request (empty body).
func AppendPing(dst []byte, seq uint32) []byte { return appendHeader(dst, OpPing, seq, 0) }

// AppendPong appends the liveness reply carrying the server identity:
// u64 uptime nanoseconds followed by the build string.
func AppendPong(dst []byte, seq uint32, info PongInfo) []byte {
	dst = appendHeader(dst, OpPong, seq, 8+len(info.Build))
	dst = binary.LittleEndian.AppendUint64(dst, info.UptimeNs)
	return append(dst, info.Build...)
}

// --- decoding ---
// Decoders validate the declared counts against the actual body length
// before touching any data, never allocate proportionally to a declared
// count (only to bytes actually present), and reuse caller-provided slices.

// DecodeHello parses a Hello body.
func DecodeHello(body []byte) (version, dims uint16, err error) {
	if len(body) != 4 {
		return 0, 0, fmt.Errorf("%w: hello body %d bytes, want 4", ErrMalformed, len(body))
	}
	return binary.LittleEndian.Uint16(body), binary.LittleEndian.Uint16(body[2:]), nil
}

// DecodeHelloAck parses a HelloAck body.
func DecodeHelloAck(body []byte) (HelloInfo, error) {
	if len(body) != 12 {
		return HelloInfo{}, fmt.Errorf("%w: helloack body %d bytes, want 12", ErrMalformed, len(body))
	}
	return HelloInfo{
		Version:  binary.LittleEndian.Uint16(body),
		Dims:     binary.LittleEndian.Uint16(body[2:]),
		Capacity: binary.LittleEndian.Uint32(body[4:]),
		Shards:   binary.LittleEndian.Uint16(body[8:]),
		Outputs:  binary.LittleEndian.Uint16(body[10:]),
	}, nil
}

// DecodeDecide parses a Decide body into pkts (reusing its backing array).
// Every packet comes back with ID=-1, OK=false, ready for DecideBatch.
// The returned traceID is non-zero when the sender set TraceFlag and
// appended a trace ID (protocol v2); plain v1 bodies return 0.
func DecodeDecide(body []byte, maxBatch int, pkts []engine.Packet) ([]engine.Packet, uint64, error) {
	if len(body) < 2 {
		return pkts[:0], 0, fmt.Errorf("%w: decide body %d bytes", ErrMalformed, len(body))
	}
	count := binary.LittleEndian.Uint16(body)
	n, traced := int(count&^TraceFlag), count&TraceFlag != 0
	if n > maxBatch {
		return pkts[:0], 0, fmt.Errorf("%w: %d decide ops (max %d)", ErrMalformed, n, maxBatch)
	}
	want := 2 + n*10
	if traced {
		want += 8
	}
	if len(body) != want {
		return pkts[:0], 0, fmt.Errorf("%w: decide body %d bytes for %d ops", ErrMalformed, len(body), n)
	}
	pkts = pkts[:0]
	for off := 2; off < 2+n*10; off += 10 {
		pkts = append(pkts, engine.Packet{
			Key: binary.LittleEndian.Uint64(body[off:]),
			Out: int(binary.LittleEndian.Uint16(body[off+8:])),
			ID:  -1,
		})
	}
	var traceID uint64
	if traced {
		traceID = binary.LittleEndian.Uint64(body[2+n*10:])
		if traceID == 0 {
			return pkts[:0], 0, fmt.Errorf("%w: traced decide with zero trace id", ErrMalformed)
		}
	}
	return pkts, traceID, nil
}

// DecodeDecided parses a Decided body into ids (reusing its backing array).
// The returned DecideTrace carries the server's phase stamps when the
// reply was traced (TraceFlag set); its ID is 0 for a plain v1 reply.
func DecodeDecided(body []byte, maxBatch int, ids []int32) ([]int32, DecideTrace, error) {
	var tr DecideTrace
	if len(body) < 2 {
		return ids[:0], tr, fmt.Errorf("%w: decided body %d bytes", ErrMalformed, len(body))
	}
	count := binary.LittleEndian.Uint16(body)
	n, traced := int(count&^TraceFlag), count&TraceFlag != 0
	if n > maxBatch {
		return ids[:0], tr, fmt.Errorf("%w: %d decided ops (max %d)", ErrMalformed, n, maxBatch)
	}
	want := 2 + n*4
	if traced {
		want += decideTraceLen
	}
	if len(body) != want {
		return ids[:0], tr, fmt.Errorf("%w: decided body %d bytes for %d ops", ErrMalformed, len(body), n)
	}
	ids = ids[:0]
	for off := 2; off < 2+n*4; off += 4 {
		ids = append(ids, int32(binary.LittleEndian.Uint32(body[off:])))
	}
	if traced {
		off := 2 + n*4
		tr.ID = binary.LittleEndian.Uint64(body[off:])
		tr.RecvNs = int64(binary.LittleEndian.Uint64(body[off+8:]))
		tr.AdmitNs = int64(binary.LittleEndian.Uint64(body[off+16:]))
		tr.StartNs = int64(binary.LittleEndian.Uint64(body[off+24:]))
		tr.DoneNs = int64(binary.LittleEndian.Uint64(body[off+32:]))
		if tr.ID == 0 {
			return ids[:0], DecideTrace{}, fmt.Errorf("%w: traced decided with zero trace id", ErrMalformed)
		}
	}
	return ids, tr, nil
}

// DecodePong parses a Pong body. An empty body (protocol v1) decodes to
// the zero PongInfo, so pinging an old server still succeeds.
func DecodePong(body []byte) (PongInfo, error) {
	if len(body) == 0 {
		return PongInfo{}, nil
	}
	if len(body) < 8 {
		return PongInfo{}, fmt.Errorf("%w: pong body %d bytes", ErrMalformed, len(body))
	}
	return PongInfo{
		UptimeNs: binary.LittleEndian.Uint64(body),
		Build:    string(body[8:]),
	}, nil
}

// DecodeTable parses a Table body under a dims-wide schema into ops, with
// every value row carved from arena (both reuse their backing arrays; the
// returned arena must be kept alive alongside ops).
func DecodeTable(body []byte, dims, maxBatch int, ops []TableOp, arena []int64) ([]TableOp, []int64, error) {
	ops, arena = ops[:0], arena[:0]
	if len(body) < 2 {
		return ops, arena, fmt.Errorf("%w: table body %d bytes", ErrMalformed, len(body))
	}
	n := int(binary.LittleEndian.Uint16(body))
	if n > maxBatch {
		return ops, arena, fmt.Errorf("%w: %d table ops (max %d)", ErrMalformed, n, maxBatch)
	}
	// Sizing pass: validate the exact layout and count values, so the arena
	// grows once and the Vals subslices below never alias a stale array.
	off, vals := 2, 0
	for i := 0; i < n; i++ {
		if off+5 > len(body) {
			return ops, arena, fmt.Errorf("%w: table op %d truncated", ErrMalformed, i)
		}
		kind := body[off]
		off += 5
		switch kind {
		case TableDelete:
		case TableAdd, TableUpdate, TableUpsert:
			if off+dims*8 > len(body) {
				return ops, arena, fmt.Errorf("%w: table op %d values truncated", ErrMalformed, i)
			}
			off += dims * 8
			vals += dims
		default:
			return ops, arena, fmt.Errorf("%w: table op %d has kind 0x%02x", ErrMalformed, i, kind)
		}
	}
	if off != len(body) {
		return ops, arena, fmt.Errorf("%w: %d trailing bytes after %d table ops", ErrMalformed, len(body)-off, n)
	}
	if cap(arena) < vals {
		arena = make([]int64, 0, vals)
	}
	off = 2
	for i := 0; i < n; i++ {
		op := TableOp{Kind: body[off], ID: binary.LittleEndian.Uint32(body[off+1:])}
		off += 5
		if op.Kind != TableDelete {
			start := len(arena)
			for d := 0; d < dims; d++ {
				arena = append(arena, int64(binary.LittleEndian.Uint64(body[off:])))
				off += 8
			}
			op.Vals = arena[start : start+dims]
		}
		ops = append(ops, op)
	}
	return ops, arena, nil
}

// DecodeTableAck parses a TableAck body into statuses (reusing its backing
// array).
func DecodeTableAck(body []byte, maxBatch int, statuses []byte) ([]byte, error) {
	if len(body) < 2 {
		return statuses[:0], fmt.Errorf("%w: tableack body %d bytes", ErrMalformed, len(body))
	}
	n := int(binary.LittleEndian.Uint16(body))
	if n > maxBatch || len(body) != 2+n {
		return statuses[:0], fmt.Errorf("%w: tableack body %d bytes for %d ops", ErrMalformed, len(body), n)
	}
	return append(statuses[:0], body[2:]...), nil
}

// DecodeSwap parses a Swap body (the DSL text) into dst, reusing its backing
// array.
func DecodeSwap(body, dst []byte) ([]byte, error) {
	return append(dst[:0], body...), nil
}

// DecodeSwapAck parses a SwapAck body.
func DecodeSwapAck(body []byte) (status byte, msg string, err error) {
	if len(body) < 1 {
		return 0, "", fmt.Errorf("%w: empty swapack body", ErrMalformed)
	}
	return body[0], string(body[1:]), nil
}

// DecodeErr parses an Err body (the server's error text).
func DecodeErr(body []byte) (string, error) {
	return string(body), nil
}

// DecodeReject parses a Reject body.
func DecodeReject(body []byte) (reason byte, err error) {
	if len(body) != 1 {
		return 0, fmt.Errorf("%w: reject body %d bytes, want 1", ErrMalformed, len(body))
	}
	return body[0], nil
}

// --- frame reading ---

// FrameReader reads frames from a byte stream into one reusable buffer.
// The returned body is valid only until the next call.
type FrameReader struct {
	r   io.Reader
	max int
	hdr [4 + headerLen]byte
	buf []byte
}

// NewFrameReader wraps r with the given payload cap (0 selects MaxPayload).
func NewFrameReader(r io.Reader, maxPayload int) *FrameReader {
	if maxPayload <= 0 || maxPayload > MaxPayload {
		maxPayload = MaxPayload
	}
	return &FrameReader{r: r, max: maxPayload}
}

// Next reads one frame. A declared payload over the cap returns
// ErrFrameTooLarge without allocating or consuming the payload; a clean EOF
// between frames returns io.EOF.
func (fr *FrameReader) Next() (op byte, seq uint32, body []byte, err error) {
	if _, err = io.ReadFull(fr.r, fr.hdr[:4]); err != nil {
		return 0, 0, nil, err
	}
	plen := int(binary.LittleEndian.Uint32(fr.hdr[:4]))
	if plen < headerLen {
		return 0, 0, nil, fmt.Errorf("%w: payload length %d under header size", ErrMalformed, plen)
	}
	if plen > fr.max {
		return 0, 0, nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, plen, fr.max)
	}
	if _, err = io.ReadFull(fr.r, fr.hdr[4:]); err != nil {
		return 0, 0, nil, unexpected(err)
	}
	op = fr.hdr[4]
	seq = binary.LittleEndian.Uint32(fr.hdr[5:])
	blen := plen - headerLen
	if cap(fr.buf) < blen {
		fr.buf = make([]byte, blen)
	}
	body = fr.buf[:blen]
	if _, err = io.ReadFull(fr.r, body); err != nil {
		return 0, 0, nil, unexpected(err)
	}
	return op, seq, body, nil
}

// unexpected maps a mid-frame EOF to io.ErrUnexpectedEOF so callers can
// distinguish a clean close (between frames) from a truncated frame.
func unexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
