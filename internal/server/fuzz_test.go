package server

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/policy"
)

// fuzzSeeds returns one valid encoding of every frame type plus known-nasty
// shapes: truncations, oversized declared lengths, garbage opcodes.
func fuzzSeeds() [][]byte {
	var seeds [][]byte
	add := func(b []byte, err error) {
		if err == nil {
			seeds = append(seeds, b)
		}
	}
	seeds = append(seeds,
		AppendHello(nil, 1, 3),
		AppendHelloAck(nil, 1, HelloInfo{Version: Version, Dims: 3, Capacity: 64, Shards: 2, Outputs: 1}),
		AppendDecide(nil, 2, []uint64{1, 2, 3}, []uint16{0, 0, 1}),
		AppendDecided(nil, 2, []engine.Packet{{ID: 4, OK: true}, {ID: -1}}),
		AppendDecideTrace(nil, 2, []uint64{1, 2}, []uint16{0, 1}, 0xabad1dea),
		AppendDecidedTrace(nil, 2, []engine.Packet{{ID: 4, OK: true}},
			DecideTrace{ID: 0xabad1dea, RecvNs: 1, AdmitNs: 2, StartNs: 3, DoneNs: 4}),
		AppendSwap(nil, 3, "policy p\nout a = min(table, cpu)\n"),
		AppendSwapAck(nil, 3, StatusOK, ""),
		AppendTableAck(nil, 4, []byte{StatusOK, StatusInvalid}),
		AppendPing(nil, 5),
		AppendPong(nil, 5, PongInfo{UptimeNs: 42, Build: "fuzz"}),
		AppendPong(nil, 5, PongInfo{}),
		AppendReject(nil, 6, RejectBusy),
		AppendErr(nil, 7, "boom"),
	)
	add(AppendTable(nil, 4, []TableOp{
		{Kind: TableAdd, ID: 1, Vals: []int64{1, 2, 3}},
		{Kind: TableDelete, ID: 1},
	}, 3))
	// Truncated frame: valid prefix, cut mid-body.
	d := AppendDecide(nil, 8, []uint64{9, 9}, []uint16{0, 0})
	seeds = append(seeds, d[:len(d)-5])
	// Oversized declared length with a tiny actual body.
	seeds = append(seeds, []byte{0xff, 0xff, 0xff, 0x7f, OpDecide, 0, 0, 0, 0, 1, 2})
	// Zero and under-header declared lengths.
	seeds = append(seeds, []byte{0, 0, 0, 0, OpPing})
	seeds = append(seeds, []byte{2, 0, 0, 0, OpPing, 0})
	// Garbage opcode, count/length disagreements.
	seeds = append(seeds, AppendFrame(nil, 0xEE, 9, []byte{1, 2, 3}))
	seeds = append(seeds, AppendFrame(nil, OpTable, 10, []byte{0xff, 0xff, TableAdd, 0}))
	seeds = append(seeds, AppendFrame(nil, OpDecide, 11, []byte{0xff, 0xff, 0, 0}))
	return seeds
}

// FuzzFrameRoundTrip drives arbitrary bytes through the frame reader and all
// body decoders. Nothing may panic, and any Decide/Table body that decodes
// must re-encode to the identical canonical frame (the codec has exactly one
// encoding per message).
func FuzzFrameRoundTrip(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data), 1<<16)
		for {
			op, seq, body, err := fr.Next()
			if err != nil {
				return
			}
			switch op {
			case OpDecide:
				pkts, traceID, err := DecodeDecide(body, MaxBatch, nil)
				if err != nil {
					continue
				}
				keys := make([]uint64, len(pkts))
				outs := make([]uint16, len(pkts))
				for i := range pkts {
					keys[i], outs[i] = pkts[i].Key, uint16(pkts[i].Out)
				}
				var re []byte
				if traceID != 0 {
					re = AppendDecideTrace(nil, seq, keys, outs, traceID)
				} else {
					re = AppendDecide(nil, seq, keys, outs)
				}
				if !bytes.Equal(re[4+headerLen:], body) {
					t.Fatalf("decide re-encode mismatch:\n  got  %x\n  want %x", re[4+headerLen:], body)
				}
			case OpTable:
				const dims = 3
				ops, _, err := DecodeTable(body, dims, MaxBatch, nil, nil)
				if err != nil {
					continue
				}
				re, err := AppendTable(nil, seq, ops, dims)
				if err != nil {
					t.Fatalf("decoded table fails to re-encode: %v", err)
				}
				if !bytes.Equal(re[4+headerLen:], body) {
					t.Fatalf("table re-encode mismatch:\n  got  %x\n  want %x", re[4+headerLen:], body)
				}
			case OpDecided:
				_, _, _ = DecodeDecided(body, MaxBatch, nil)
			case OpTableAck:
				_, _ = DecodeTableAck(body, MaxBatch, nil)
			case OpSwapAck:
				_, _, _ = DecodeSwapAck(body)
			case OpPong:
				_, _ = DecodePong(body)
			case OpReject:
				_, _ = DecodeReject(body)
			case OpHello:
				_, _, _ = DecodeHello(body)
			case OpHelloAck:
				_, _ = DecodeHelloAck(body)
			}
		}
	})
}

// FuzzServerDecode feeds arbitrary byte streams to a live server over a Unix
// socket. The server must never panic, never wedge, and always release the
// connection: the client half-closes after writing, so a hang here means the
// read loop failed to terminate on garbage input.
func FuzzServerDecode(f *testing.F) {
	eng, err := engine.New(engine.Config{
		Shards:   1,
		Capacity: 8,
		Schema:   policy.Schema{Attrs: []string{"cpu", "mem", "bw"}},
		Policy:   policy.MustParse("policy fz\nout best = min(table, cpu)\n"),
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(eng.Close)
	srv, err := New(Config{Backend: eng, Ring: 4})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(srv.Close)
	sock := f.TempDir() + "/fz.sock"
	l, err := net.Listen("unix", sock)
	if err != nil {
		f.Fatal(err)
	}
	go srv.Serve(l)

	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	// A multi-frame stream: valid traffic, then garbage.
	var mixed []byte
	mixed = AppendPing(mixed, 1)
	mixed = AppendDecide(mixed, 2, []uint64{7}, []uint16{0})
	mixed = AppendFrame(mixed, 0x7F, 3, []byte("junk"))
	f.Add(mixed)

	f.Fuzz(func(t *testing.T, data []byte) {
		nc, err := net.Dial("unix", sock)
		if err != nil {
			t.Skip("dial:", err)
		}
		defer nc.Close()
		nc.SetDeadline(time.Now().Add(5 * time.Second))
		if _, err := nc.Write(data); err != nil {
			return // server already dropped us (protocol error mid-stream)
		}
		nc.(*net.UnixConn).CloseWrite()
		// Drain replies until the server closes its side. Replies must all be
		// well-formed frames.
		fr := NewFrameReader(nc, MaxPayload)
		for {
			_, _, _, err := fr.Next()
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return
			}
			if err != nil {
				if ne, ok := err.(net.Error); ok && ne.Timeout() {
					t.Fatal("server wedged: no EOF within deadline")
				}
				return
			}
		}
	})
}
