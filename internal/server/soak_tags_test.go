//go:build !soak

package server_test

import "time"

// soakDuration is the traffic window of TestSoakFaultInjected in the default
// build. `go test -tags soak` selects the long run.
const soakDuration = 3 * time.Second
