package server

import (
	"net"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/policy"
	"repro/internal/telemetry"
)

// blockBackend is a Backend whose DecideBatch parks until released, so tests
// can hold a connection's worker busy and fill its ring deterministically.
type blockBackend struct {
	gate    chan struct{} // DecideBatch blocks until this closes
	started chan struct{} // one token per DecideBatch entered
}

func newBlockBackend() *blockBackend {
	return &blockBackend{gate: make(chan struct{}), started: make(chan struct{}, 64)}
}

func (b *blockBackend) DecideBatch(pkts []engine.Packet) {
	b.started <- struct{}{}
	<-b.gate
	for i := range pkts {
		pkts[i].ID, pkts[i].OK = 1, true
	}
}
func (b *blockBackend) Add(int, []int64) error           { return nil }
func (b *blockBackend) Update(int, []int64) error        { return nil }
func (b *blockBackend) Upsert(int, []int64) error        { return nil }
func (b *blockBackend) Delete(int) error                 { return nil }
func (b *blockBackend) SwapPolicy(*policy.Policy) error  { return nil }
func (b *blockBackend) Schema() policy.Schema            { return policy.Schema{Attrs: []string{"cpu"}} }
func (b *blockBackend) Capacity() int                    { return 8 }
func (b *blockBackend) Shards() int                      { return 1 }
func (b *blockBackend) Policy() *policy.Policy {
	return policy.MustParse("policy bp\nout best = min(table, cpu)\n")
}

// dialTestServer starts srv on a fresh Unix socket and dials it once.
func dialTestServer(t *testing.T, srv *Server) net.Conn {
	t.Helper()
	sock := t.TempDir() + "/bp.sock"
	l, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	nc, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return nc
}

// TestBackpressureRejects: with Ring=2 and the worker parked, exactly two
// requests are admitted; every further request draws a deterministic Reject
// frame, the reject/inflight counters move, and after release every admitted
// request is answered — zero silent drops.
func TestBackpressureRejects(t *testing.T) {
	be := newBlockBackend()
	reg := telemetry.NewRegistry()
	srv, err := New(Config{Backend: be, Ring: 2, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	nc := dialTestServer(t, srv)

	// Frame 1 is admitted and picked up by the worker (parked in the
	// backend); wait for that pickup so the remaining admissions are
	// attributable purely to the free list.
	var buf []byte
	buf = AppendDecide(buf, 1, []uint64{1}, []uint16{0})
	if _, err := nc.Write(buf); err != nil {
		t.Fatal(err)
	}
	<-be.started

	// Frame 1 holds one of the two ring slots while parked. Frame 2 takes
	// the other; frames 3..5 must all bounce.
	buf = buf[:0]
	for seq := uint32(2); seq <= 5; seq++ {
		buf = AppendDecide(buf, seq, []uint64{uint64(seq)}, []uint16{0})
	}
	if _, err := nc.Write(buf); err != nil {
		t.Fatal(err)
	}

	fr := NewFrameReader(nc, MaxPayload)
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	rejected := map[uint32]bool{}
	for i := 0; i < 3; i++ {
		op, seq, body, err := fr.Next()
		if err != nil {
			t.Fatalf("reject %d: %v", i, err)
		}
		if op != OpReject {
			t.Fatalf("reply %d: op %#x, want Reject", i, op)
		}
		reason, err := DecodeReject(body)
		if err != nil || reason != RejectBusy {
			t.Fatalf("reject %d: reason %d err %v", i, reason, err)
		}
		rejected[seq] = true
	}
	for seq := uint32(3); seq <= 5; seq++ {
		if !rejected[seq] {
			t.Fatalf("seq %d was not rejected; rejected set: %v", seq, rejected)
		}
	}
	if got := srv.m.rejects.Value(); got != 3 {
		t.Fatalf("rejects_total = %d, want 3", got)
	}
	if got := srv.m.inflight.Value(); got != 2 {
		t.Fatalf("inflight = %d with worker parked, want 2", got)
	}

	// Release the worker: both admitted requests must be answered in order.
	close(be.gate)
	for want := uint32(1); want <= 2; want++ {
		op, seq, body, err := fr.Next()
		if err != nil {
			t.Fatalf("decided %d: %v", want, err)
		}
		if op != OpDecided || seq != want {
			t.Fatalf("reply op=%#x seq=%d, want Decided seq=%d", op, seq, want)
		}
		ids, _, err := DecodeDecided(body, MaxBatch, nil)
		if err != nil || len(ids) != 1 || ids[0] != 1 {
			t.Fatalf("decided %d: ids=%v err=%v", want, ids, err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.m.inflight.Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("inflight stuck at %d after drain", srv.m.inflight.Value())
		}
		time.Sleep(time.Millisecond)
	}
	if got := srv.m.decisions.Value(); got != 2 {
		t.Fatalf("decisions_total = %d, want 2", got)
	}
}

// TestBackpressureRecovery: after a burst of rejects the ring drains and the
// same connection serves new requests normally.
func TestBackpressureRecovery(t *testing.T) {
	be := newBlockBackend()
	reg := telemetry.NewRegistry()
	srv, err := New(Config{Backend: be, Ring: 1, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	nc := dialTestServer(t, srv)
	fr := NewFrameReader(nc, MaxPayload)
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))

	var buf []byte
	buf = AppendDecide(buf, 1, []uint64{1}, []uint16{0})
	if _, err := nc.Write(buf); err != nil {
		t.Fatal(err)
	}
	<-be.started
	if _, err := nc.Write(AppendDecide(nil, 2, []uint64{2}, []uint16{0})); err != nil {
		t.Fatal(err)
	}
	op, seq, _, err := fr.Next()
	if err != nil || op != OpReject || seq != 2 {
		t.Fatalf("op=%#x seq=%d err=%v, want Reject seq=2", op, seq, err)
	}
	close(be.gate)
	if op, seq, _, err = fr.Next(); err != nil || op != OpDecided || seq != 1 {
		t.Fatalf("op=%#x seq=%d err=%v, want Decided seq=1", op, seq, err)
	}
	// The rejected request retried after EAGAIN now succeeds.
	if _, err := nc.Write(AppendDecide(nil, 3, []uint64{2}, []uint16{0})); err != nil {
		t.Fatal(err)
	}
	if op, seq, _, err = fr.Next(); err != nil || op != OpDecided || seq != 3 {
		t.Fatalf("op=%#x seq=%d err=%v, want Decided seq=3", op, seq, err)
	}
	if got := srv.m.rejects.Value(); got != 1 {
		t.Fatalf("rejects_total = %d, want 1", got)
	}
}

// TestAdmissionLimit: connections over MaxConns get a courtesy Err frame and
// a closed socket, and the rejected-connections counter moves.
func TestAdmissionLimit(t *testing.T) {
	be := newBlockBackend()
	reg := telemetry.NewRegistry()
	srv, err := New(Config{Backend: be, MaxConns: 1, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	first := dialTestServer(t, srv)
	// Confirm the first connection is live before racing the second in.
	if _, err := first.Write(AppendPing(nil, 1)); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(first, MaxPayload)
	first.SetReadDeadline(time.Now().Add(5 * time.Second))
	if op, _, _, err := fr.Next(); err != nil || op != OpPong {
		t.Fatalf("ping: op=%#x err=%v", op, err)
	}

	second, err := net.Dial("unix", first.RemoteAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	second.SetReadDeadline(time.Now().Add(5 * time.Second))
	fr2 := NewFrameReader(second, MaxPayload)
	op, _, body, err := fr2.Next()
	if err != nil || op != OpErr {
		t.Fatalf("second conn: op=%#x err=%v, want Err frame", op, err)
	}
	if string(body) != "server full" {
		t.Fatalf("second conn message %q", body)
	}
	if _, _, _, err := fr2.Next(); err == nil {
		t.Fatal("second conn stayed open past the admission limit")
	}
	if got := srv.m.connsRejected.Value(); got != 1 {
		t.Fatalf("conns_rejected_total = %d, want 1", got)
	}
	close(be.gate)
}
