//go:build soak

package server_test

import "time"

// soakDuration under `-tags soak`: the long-run soak window.
const soakDuration = 30 * time.Second
