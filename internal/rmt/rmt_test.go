package rmt

import (
	"errors"
	"testing"

	"repro/internal/bitvec"
)

func probeParser(t *testing.T) *Parser {
	t.Helper()
	p, err := NewParser([]FieldSpec{
		{Name: "resource", Offset: 0, Width: 2},
		{Name: "util", Offset: 2, Width: 4},
		{Name: "delay", Offset: 6, Width: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParserValidation(t *testing.T) {
	bad := [][]FieldSpec{
		nil,
		{{Name: "", Offset: 0, Width: 1}},
		{{Name: "a", Offset: 0, Width: 1}, {Name: "a", Offset: 1, Width: 1}},
		{{Name: "a", Offset: -1, Width: 1}},
		{{Name: "a", Offset: 0, Width: 9}},
		{{Name: "a", Offset: 0, Width: 0}},
	}
	for i, specs := range bad {
		if _, err := NewParser(specs); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestParseSerializeRoundTrip(t *testing.T) {
	p := probeParser(t)
	fields := map[string]uint64{"resource": 7, "util": 123456, "delay": 99}
	data, err := p.Serialize(fields)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 10 {
		t.Fatalf("serialized length = %d", len(data))
	}
	got, err := p.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range fields {
		if got[k] != v {
			t.Errorf("field %s = %d, want %d", k, got[k], v)
		}
	}
}

func TestParseShortPacket(t *testing.T) {
	p := probeParser(t)
	if _, err := p.Parse(make([]byte, 5)); err == nil {
		t.Fatal("short packet should fail")
	}
}

func TestSerializeMissingField(t *testing.T) {
	p := probeParser(t)
	if _, err := p.Serialize(map[string]uint64{"resource": 1}); err == nil {
		t.Fatal("missing field should fail")
	}
}

func TestMatchTable(t *testing.T) {
	var hits, defaults int
	tbl, err := NewMatchTable("conn", []string{"src", "dst"}, 4,
		func(*PacketContext) { defaults++ })
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Install([]uint64{1, 2}, func(ctx *PacketContext) {
		hits++
		ctx.Meta["server"] = 9
	}); err != nil {
		t.Fatal(err)
	}

	ctx := NewPacketContext()
	ctx.Fields["src"], ctx.Fields["dst"] = 1, 2
	hit, err := tbl.Apply(ctx)
	if err != nil || !hit {
		t.Fatalf("hit=%v err=%v", hit, err)
	}
	if ctx.Meta["server"] != 9 || hits != 1 {
		t.Fatal("action did not run")
	}

	ctx.Fields["dst"] = 3
	hit, err = tbl.Apply(ctx)
	if err != nil || hit {
		t.Fatalf("expected miss, hit=%v err=%v", hit, err)
	}
	if defaults != 1 {
		t.Fatal("default action did not run")
	}
}

func TestMatchTableMetadataKeys(t *testing.T) {
	tbl, _ := NewMatchTable("m", []string{"x"}, 2, nil)
	if err := tbl.Install([]uint64{5}, nil); err != nil {
		t.Fatal(err)
	}
	ctx := NewPacketContext()
	ctx.Meta["x"] = 5 // key resolved from metadata when absent in headers
	hit, err := tbl.Apply(ctx)
	if err != nil || !hit {
		t.Fatalf("metadata key lookup: hit=%v err=%v", hit, err)
	}
	delete(ctx.Meta, "x")
	if _, err := tbl.Apply(ctx); err == nil {
		t.Fatal("missing key field should error")
	}
}

func TestMatchTableCapacityAndRemove(t *testing.T) {
	tbl, _ := NewMatchTable("cap", []string{"k"}, 2, nil)
	if err := tbl.Install([]uint64{1}, nil); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Install([]uint64{2}, nil); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Install([]uint64{3}, nil); err == nil {
		t.Fatal("over-capacity install should fail")
	}
	// Replacing an existing entry is fine at capacity.
	if err := tbl.Install([]uint64{2}, nil); err != nil {
		t.Fatalf("replace failed: %v", err)
	}
	if err := tbl.Remove([]uint64{1}); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	if err := tbl.Install([]uint64{3}, nil); err != nil {
		t.Fatalf("install after remove failed: %v", err)
	}
}

func TestRegisterArraySingleAccess(t *testing.T) {
	ra, err := NewRegisterArray("q", 8)
	if err != nil {
		t.Fatal(err)
	}
	ra.BeginPacket()
	v, err := ra.Access(3, func(old int64) int64 { return old + 5 })
	if err != nil || v != 5 {
		t.Fatalf("first access: v=%d err=%v", v, err)
	}
	// Second access in the same packet violates the RMT constraint.
	if _, err := ra.Access(4, func(old int64) int64 { return old }); !errors.Is(err, ErrAccessViolation) {
		t.Fatalf("expected access violation, got %v", err)
	}
	// Next packet gets a fresh budget.
	ra.BeginPacket()
	if _, err := ra.Access(4, func(old int64) int64 { return old + 1 }); err != nil {
		t.Fatal(err)
	}
	if ra.Peek(3) != 5 || ra.Peek(4) != 1 {
		t.Fatal("register contents wrong")
	}
}

// TestRegisterArrayCannotScan demonstrates the motivating limitation of
// §2.2: a per-packet scan over all N registers — what a min-filter would
// need — hits the access violation on the second register.
func TestRegisterArrayCannotScan(t *testing.T) {
	ra, _ := NewRegisterArray("metrics", 16)
	ra.BeginPacket()
	violations := 0
	for i := 0; i < ra.Len(); i++ {
		if _, err := ra.Access(i, func(old int64) int64 { return old }); err != nil {
			violations++
		}
	}
	if violations != ra.Len()-1 {
		t.Fatalf("scan produced %d violations, want %d", violations, ra.Len()-1)
	}
}

func TestRegisterArrayBounds(t *testing.T) {
	ra, _ := NewRegisterArray("r", 2)
	ra.BeginPacket()
	if _, err := ra.Access(2, func(o int64) int64 { return o }); err == nil {
		t.Fatal("out-of-range access should fail")
	}
	if _, err := NewRegisterArray("bad", 0); err == nil {
		t.Fatal("zero-size array should fail")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Add(100)
	c.Add(50)
	if c.Packets != 2 || c.Bytes != 150 {
		t.Fatalf("counter = %+v", c)
	}
	c.Reset()
	if c.Packets != 0 || c.Bytes != 0 {
		t.Fatal("reset failed")
	}
}

func TestQueueTracker(t *testing.T) {
	qt, err := NewQueueTracker(4)
	if err != nil {
		t.Fatal(err)
	}
	var changes []int64
	qt.OnChange = func(q int, l int64) {
		if q == 1 {
			changes = append(changes, l)
		}
	}
	qt.Enqueue(1)
	qt.Enqueue(1)
	qt.Dequeue(1)
	if qt.Len(1) != 1 {
		t.Fatalf("len = %d", qt.Len(1))
	}
	want := []int64{1, 2, 1}
	for i := range want {
		if changes[i] != want[i] {
			t.Fatalf("changes = %v", changes)
		}
	}
	// Stray dequeue clamps to zero.
	qt.Dequeue(2)
	if qt.Len(2) != 0 {
		t.Fatal("clamp failed")
	}
	if qt.NumQueues() != 4 {
		t.Fatal("NumQueues wrong")
	}
}

func TestQueueTrackerPanicsOutOfRange(t *testing.T) {
	qt, _ := NewQueueTracker(2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range queue should panic")
		}
	}()
	qt.Enqueue(2)
}

func TestMuxNonEmpty(t *testing.T) {
	empty := bitvec.New(4)
	a := bitvec.FromIDs(4, 1)
	b := bitvec.FromIDs(4, 2)
	if got := MuxNonEmpty(a, b); !got.Equal(a) {
		t.Fatal("should pick first non-empty")
	}
	if got := MuxNonEmpty(empty, b); !got.Equal(b) {
		t.Fatal("should skip empty primary")
	}
	if got := MuxNonEmpty(empty, bitvec.New(4)); got.Any() {
		t.Fatal("all-empty should return last (empty)")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no candidates should panic")
		}
	}()
	MuxNonEmpty()
}
