// Package rmt models the slice of a Reconfigurable Match Table pipeline [5]
// that Thanos's architecture relies on (§3): a programmable parser that
// extracts metric values from probe-packet headers, exact-match
// match-action tables, stateful register arrays with RMT's
// one-access-per-packet-per-stage constraint (§2.2), counters, the
// event-driven queue-length tracking of [10], and the MUX stage that
// implements conditional policies right after the filter module (§4.2.3).
//
// The register-array model deliberately enforces the access constraint the
// paper's motivation hinges on — "RMT allows access to at most single entry
// per register array per packet per pipeline stage" — so tests can
// demonstrate why table-wide filtering cannot be expressed in plain RMT.
package rmt

import (
	"encoding/binary"
	"fmt"

	"repro/internal/bitvec"
)

// FieldSpec describes one header field extracted by the parser: Width bytes
// (1–8, big-endian) at byte Offset.
type FieldSpec struct {
	Name   string
	Offset int
	Width  int
}

// Parser extracts fixed-format header fields from packet bytes, the job RMT
// performs on Thanos probe packets to recover remote metric values (§3).
type Parser struct {
	fields []FieldSpec
}

// NewParser validates the field layout and returns a parser.
func NewParser(fields []FieldSpec) (*Parser, error) {
	if len(fields) == 0 {
		return nil, fmt.Errorf("rmt: parser needs at least one field")
	}
	seen := map[string]bool{}
	for _, f := range fields {
		if f.Name == "" {
			return nil, fmt.Errorf("rmt: unnamed field")
		}
		if seen[f.Name] {
			return nil, fmt.Errorf("rmt: duplicate field %q", f.Name)
		}
		seen[f.Name] = true
		if f.Offset < 0 || f.Width < 1 || f.Width > 8 {
			return nil, fmt.Errorf("rmt: field %q has invalid layout (offset %d, width %d)",
				f.Name, f.Offset, f.Width)
		}
	}
	return &Parser{fields: fields}, nil
}

// Parse extracts all fields from data into a fresh field map. It returns an
// error if the packet is too short for any field.
func (p *Parser) Parse(data []byte) (map[string]uint64, error) {
	out := make(map[string]uint64, len(p.fields))
	for _, f := range p.fields {
		end := f.Offset + f.Width
		if end > len(data) {
			return nil, fmt.Errorf("rmt: packet too short (%d bytes) for field %q ending at %d",
				len(data), f.Name, end)
		}
		var v uint64
		for _, b := range data[f.Offset:end] {
			v = v<<8 | uint64(b)
		}
		out[f.Name] = v
	}
	return out, nil
}

// Serialize writes field values into a byte slice laid out per the parser's
// specs (the inverse of Parse), used to fabricate probe packets.
func (p *Parser) Serialize(fields map[string]uint64) ([]byte, error) {
	size := 0
	for _, f := range p.fields {
		if end := f.Offset + f.Width; end > size {
			size = end
		}
	}
	buf := make([]byte, size)
	for _, f := range p.fields {
		v, ok := fields[f.Name]
		if !ok {
			return nil, fmt.Errorf("rmt: missing value for field %q", f.Name)
		}
		var tmp [8]byte
		binary.BigEndian.PutUint64(tmp[:], v)
		copy(buf[f.Offset:f.Offset+f.Width], tmp[8-f.Width:])
	}
	return buf, nil
}

// PacketContext carries one packet through the pipeline: parsed header
// fields, the metadata bus later stages (and Thanos's filter module) write
// results to, and the drop flag.
type PacketContext struct {
	Fields map[string]uint64
	Meta   map[string]uint64
	Drop   bool
}

// NewPacketContext returns a context with empty field and metadata maps.
func NewPacketContext() *PacketContext {
	return &PacketContext{Fields: map[string]uint64{}, Meta: map[string]uint64{}}
}

// Action is the code a matched table entry runs on the packet.
type Action func(ctx *PacketContext)

// MatchTable is an exact-match match-action table over a fixed key of
// header/metadata fields.
type MatchTable struct {
	name     string
	keys     []string
	capacity int
	entries  map[string]Action
	def      Action
}

// NewMatchTable creates a table matching the given field names with the
// given capacity and default (miss) action; def may be nil for no-op.
func NewMatchTable(name string, keys []string, capacity int, def Action) (*MatchTable, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("rmt: table %q needs at least one key field", name)
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("rmt: table %q needs positive capacity", name)
	}
	return &MatchTable{
		name: name, keys: keys, capacity: capacity,
		entries: make(map[string]Action), def: def,
	}, nil
}

// Len returns the number of installed entries.
func (t *MatchTable) Len() int { return len(t.entries) }

func (t *MatchTable) keyString(vals []uint64) (string, error) {
	if len(vals) != len(t.keys) {
		return "", fmt.Errorf("rmt: table %q key arity %d, want %d", t.name, len(vals), len(t.keys))
	}
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.BigEndian.PutUint64(buf[8*i:], v)
	}
	return string(buf), nil
}

// Install adds or replaces an entry. It fails when the table is full.
func (t *MatchTable) Install(keyVals []uint64, a Action) error {
	k, err := t.keyString(keyVals)
	if err != nil {
		return err
	}
	if _, exists := t.entries[k]; !exists && len(t.entries) >= t.capacity {
		return fmt.Errorf("rmt: table %q full (%d entries)", t.name, t.capacity)
	}
	t.entries[k] = a
	return nil
}

// Remove deletes an entry if present.
func (t *MatchTable) Remove(keyVals []uint64) error {
	k, err := t.keyString(keyVals)
	if err != nil {
		return err
	}
	delete(t.entries, k)
	return nil
}

// Apply looks the packet up (reading key fields from Fields, falling back
// to Meta) and runs the matched or default action. It reports whether an
// entry hit.
func (t *MatchTable) Apply(ctx *PacketContext) (hit bool, err error) {
	vals := make([]uint64, len(t.keys))
	for i, k := range t.keys {
		v, ok := ctx.Fields[k]
		if !ok {
			v, ok = ctx.Meta[k]
		}
		if !ok {
			return false, fmt.Errorf("rmt: table %q: packet missing key field %q", t.name, k)
		}
		vals[i] = v
	}
	key, err := t.keyString(vals)
	if err != nil {
		return false, err
	}
	if a, ok := t.entries[key]; ok {
		if a != nil {
			a(ctx)
		}
		return true, nil
	}
	if t.def != nil {
		t.def(ctx)
	}
	return false, nil
}

// ErrAccessViolation is returned when a packet touches more than one entry
// of a register array within a single stage traversal — the RMT constraint
// of §2.2 that precludes table-wide filtering in the standard pipeline.
var ErrAccessViolation = fmt.Errorf("rmt: register array allows one access per packet per stage")

// RegisterArray is stateful per-stage memory with RMT's single-access
// constraint. Call BeginPacket when a new packet enters the stage.
type RegisterArray struct {
	name     string
	regs     []int64
	accessed bool
}

// NewRegisterArray allocates n zeroed registers.
func NewRegisterArray(name string, n int) (*RegisterArray, error) {
	if n <= 0 {
		return nil, fmt.Errorf("rmt: register array %q needs positive size", name)
	}
	return &RegisterArray{name: name, regs: make([]int64, n)}, nil
}

// Len returns the number of registers.
func (r *RegisterArray) Len() int { return len(r.regs) }

// BeginPacket resets the per-packet access budget.
func (r *RegisterArray) BeginPacket() { r.accessed = false }

// Access performs the packet's single read-modify-write on register i,
// applying f to the old value and storing the result. A second access in
// the same packet returns ErrAccessViolation, and control-flow that needs
// to scan the array (as a filter would) therefore cannot be expressed.
func (r *RegisterArray) Access(i int, f func(old int64) int64) (int64, error) {
	if i < 0 || i >= len(r.regs) {
		return 0, fmt.Errorf("rmt: register %d out of range [0,%d)", i, len(r.regs))
	}
	if r.accessed {
		return 0, ErrAccessViolation
	}
	r.accessed = true
	nv := f(r.regs[i])
	r.regs[i] = nv
	return nv, nil
}

// Peek reads register i from the control plane (not subject to the
// per-packet budget; the data plane must use Access).
func (r *RegisterArray) Peek(i int) int64 { return r.regs[i] }

// Counter counts packets and bytes, RMT's basic local-metric primitive.
type Counter struct {
	Packets uint64
	Bytes   uint64
}

// Add records one packet of the given size.
func (c *Counter) Add(bytes int) {
	c.Packets++
	c.Bytes += uint64(bytes)
}

// Reset zeroes the counter.
func (c *Counter) Reset() { c.Packets, c.Bytes = 0, 0 }

// QueueTracker maintains per-queue occupancy using the event-driven packet
// processing of [10] (§3): an enqueue event increments the queue's length
// register, a dequeue event decrements it. This is how Thanos keeps the
// DRILL-style local queue-length metric fresh at line rate, and OnChange
// lets the SMBM subscribe to updates.
type QueueTracker struct {
	lengths  []int64
	OnChange func(queue int, newLen int64)
}

// NewQueueTracker tracks n queues starting empty.
func NewQueueTracker(n int) (*QueueTracker, error) {
	if n <= 0 {
		return nil, fmt.Errorf("rmt: queue tracker needs positive queue count")
	}
	return &QueueTracker{lengths: make([]int64, n)}, nil
}

// Enqueue records a packet entering queue q.
func (qt *QueueTracker) Enqueue(q int) { qt.bump(q, 1) }

// Dequeue records a packet leaving queue q. Occupancy never goes negative;
// a stray dequeue is clamped.
func (qt *QueueTracker) Dequeue(q int) { qt.bump(q, -1) }

// Len returns queue q's current occupancy.
func (qt *QueueTracker) Len(q int) int64 { return qt.lengths[q] }

// NumQueues returns the number of tracked queues.
func (qt *QueueTracker) NumQueues() int { return len(qt.lengths) }

func (qt *QueueTracker) bump(q int, d int64) {
	if q < 0 || q >= len(qt.lengths) {
		panic(fmt.Sprintf("rmt: queue %d out of range [0,%d)", q, len(qt.lengths)))
	}
	nv := qt.lengths[q] + d
	if nv < 0 {
		nv = 0
	}
	qt.lengths[q] = nv
	if qt.OnChange != nil {
		qt.OnChange(q, nv)
	}
}

// MuxNonEmpty implements the conditional-policy MUX of §4.2.3 in a single
// match-action stage: it returns the first table in priority order that is
// non-empty, or the last one if all are empty. It panics on an empty
// candidate list.
func MuxNonEmpty(candidates ...*bitvec.Vector) *bitvec.Vector {
	if len(candidates) == 0 {
		panic("rmt: MuxNonEmpty needs at least one candidate")
	}
	for _, c := range candidates[:len(candidates)-1] {
		if c.Any() {
			return c
		}
	}
	return candidates[len(candidates)-1]
}
