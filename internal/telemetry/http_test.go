package telemetry

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
)

func newTestMux(t *testing.T) (*httptest.Server, *Registry) {
	t.Helper()
	r := NewRegistry()
	c := r.NewCounter("thanos_http_test_total", "scrape test counter")
	c.Add(5)
	tr := NewTracer(1, 4, 0)
	s := tr.Sample()
	s.AddStage("table", 8, 0)
	s.Finish(0, 2, true)
	srv := httptest.NewServer(Mux(r, tr.Snapshot))
	t.Cleanup(srv.Close)
	return srv, r
}

func TestMetricsEndpoint(t *testing.T) {
	srv, _ := newTestMux(t)
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "thanos_http_test_total 5") {
		t.Fatalf("metrics body missing counter:\n%s", raw)
	}
}

func TestExpvarEndpoint(t *testing.T) {
	srv, _ := newTestMux(t)
	resp, err := srv.Client().Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	raw, ok := vars["thanos"]
	if !ok {
		t.Fatalf("expvar missing thanos key; got keys %v", keysOf(vars))
	}
	var snap map[string]any
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap["thanos_http_test_total"].(float64) != 5 {
		t.Fatalf("expvar snapshot = %v", snap)
	}
}

func TestTraceEndpoints(t *testing.T) {
	srv, _ := newTestMux(t)

	resp, err := srv.Client().Get(srv.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var traces []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 || traces[0]["id"].(float64) != 2 {
		t.Fatalf("traces = %v", traces)
	}

	resp2, err := srv.Client().Get(srv.URL + "/trace/chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&chrome); err != nil {
		t.Fatal(err)
	}
	if len(chrome.TraceEvents) != 2 {
		t.Fatalf("chrome events = %d, want 2 (decide + 1 stage)", len(chrome.TraceEvents))
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	r := NewRegistry()
	// Second publish under the same name must not panic (expvar.Publish
	// normally does); the first registration keeps the name.
	r.PublishExpvar("thanos_test_idempotent")
	r.PublishExpvar("thanos_test_idempotent")
}

// newIntrospectMux builds a full-surface mux: registry, flight recorder with
// one populated ring, an introspection callback, and pprof.
func newIntrospectMux(t *testing.T) (*httptest.Server, *FlightRecorder) {
	t.Helper()
	r := NewRegistry()
	fl := NewFlightRecorder()
	ring := fl.Ring("server", 16)
	ring.Record(SpanDecide, 0xbeef, 1000, 3000, 8)
	ring.Event(EventQuarantine, 0, 4000, 2)
	srv := httptest.NewServer(NewMux(MuxConfig{
		Registry: r,
		Flight:   fl,
		Introspect: map[string]func() any{
			"engine": func() any { return map[string]int{"shards": 4} },
		},
		Pprof: true,
	}))
	t.Cleanup(srv.Close)
	return srv, fl
}

func TestIntrospectionEndpoint(t *testing.T) {
	srv, fl := newIntrospectMux(t)
	fl.Trip("test")
	resp, err := srv.Client().Get(srv.URL + "/debug/thanos")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		Components map[string]json.RawMessage `json:"components"`
		Flight     map[string][]struct {
			Kind    string `json:"kind"`
			TraceID uint64 `json:"trace_id"`
		} `json:"flight"`
		Trips uint64 `json:"flight_trips"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if _, ok := got.Components["engine"]; !ok {
		t.Fatalf("components missing engine: %v", got.Components)
	}
	spans := got.Flight["server"]
	if len(spans) != 2 || spans[0].Kind != "decide" || spans[0].TraceID != 0xbeef ||
		spans[1].Kind != "quarantine" {
		t.Fatalf("flight spans = %+v", spans)
	}
	if got.Trips != 1 {
		t.Fatalf("flight_trips = %d, want 1", got.Trips)
	}
}

func TestIntrospectionChromeEndpoint(t *testing.T) {
	srv, _ := newIntrospectMux(t)
	resp, err := srv.Client().Get(srv.URL + "/debug/thanos/chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&chrome); err != nil {
		t.Fatal(err)
	}
	if len(chrome.TraceEvents) != 2 {
		t.Fatalf("chrome events = %d, want 2", len(chrome.TraceEvents))
	}
}

func TestPprofEndpointGated(t *testing.T) {
	srv, _ := newIntrospectMux(t)
	resp, err := srv.Client().Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pprof-enabled mux: status = %d", resp.StatusCode)
	}
	// Without Pprof the path must not be mounted.
	plain := httptest.NewServer(NewMux(MuxConfig{Registry: NewRegistry()}))
	defer plain.Close()
	resp2, err := plain.Client().Get(plain.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode == 200 {
		t.Fatal("pprof served without cfg.Pprof")
	}
}

// TestMuxConcurrentScrapeAndRecord hammers every endpoint while writers
// pound the flight ring and the histogram, and the recorder trips
// mid-scrape. Run under -race at GOMAXPROCS=1 and 4; any torn read in the
// seqlock or snapshot paths shows up here.
func TestMuxConcurrentScrapeAndRecord(t *testing.T) {
	for _, procs := range []int{1, 4} {
		old := runtime.GOMAXPROCS(procs)
		r := NewRegistry()
		hist := r.NewHistogram("thanos_test_lat", "test latencies")
		fl := NewFlightRecorder()
		fl.SetAutoDump(io.Discard)
		ring := fl.Ring("server", 32)
		srv := httptest.NewServer(NewMux(MuxConfig{
			Registry: r,
			Flight:   fl,
			Introspect: map[string]func() any{
				"static": func() any { return 1 },
			},
		}))

		stop := make(chan struct{})
		var writers sync.WaitGroup
		for w := 0; w < 4; w++ {
			writers.Add(1)
			go func(w int) {
				defer writers.Done()
				for i := int64(1); ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					id := uint64(w)<<32 | uint64(i)
					ring.Record(SpanDecide, id, i, i+10, int64(w))
					hist.ObserveExemplar(uint64(i%2048), id)
					if i%512 == 0 {
						fl.Trip("stress")
					}
				}
			}(w)
		}
		var scrapers sync.WaitGroup
		for g := 0; g < 3; g++ {
			scrapers.Add(1)
			go func() {
				defer scrapers.Done()
				paths := []string{"/metrics", "/debug/thanos", "/debug/thanos/chrome", "/debug/vars"}
				for i := 0; i < 20; i++ {
					resp, err := srv.Client().Get(srv.URL + paths[i%len(paths)])
					if err != nil {
						t.Error(err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}()
		}
		scrapers.Wait()
		close(stop)
		writers.Wait()
		srv.Close()
		runtime.GOMAXPROCS(old)
	}
}

func keysOf(m map[string]json.RawMessage) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
