package telemetry

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestMux(t *testing.T) (*httptest.Server, *Registry) {
	t.Helper()
	r := NewRegistry()
	c := r.NewCounter("thanos_http_test_total", "scrape test counter")
	c.Add(5)
	tr := NewTracer(1, 4, 0)
	s := tr.Sample()
	s.AddStage("table", 8, 0)
	s.Finish(0, 2, true)
	srv := httptest.NewServer(Mux(r, tr.Snapshot))
	t.Cleanup(srv.Close)
	return srv, r
}

func TestMetricsEndpoint(t *testing.T) {
	srv, _ := newTestMux(t)
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "thanos_http_test_total 5") {
		t.Fatalf("metrics body missing counter:\n%s", raw)
	}
}

func TestExpvarEndpoint(t *testing.T) {
	srv, _ := newTestMux(t)
	resp, err := srv.Client().Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	raw, ok := vars["thanos"]
	if !ok {
		t.Fatalf("expvar missing thanos key; got keys %v", keysOf(vars))
	}
	var snap map[string]any
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap["thanos_http_test_total"].(float64) != 5 {
		t.Fatalf("expvar snapshot = %v", snap)
	}
}

func TestTraceEndpoints(t *testing.T) {
	srv, _ := newTestMux(t)

	resp, err := srv.Client().Get(srv.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var traces []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 || traces[0]["id"].(float64) != 2 {
		t.Fatalf("traces = %v", traces)
	}

	resp2, err := srv.Client().Get(srv.URL + "/trace/chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&chrome); err != nil {
		t.Fatal(err)
	}
	if len(chrome.TraceEvents) != 2 {
		t.Fatalf("chrome events = %d, want 2 (decide + 1 stage)", len(chrome.TraceEvents))
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	r := NewRegistry()
	// Second publish under the same name must not panic (expvar.Publish
	// normally does); the first registration keeps the name.
	r.PublishExpvar("thanos_test_idempotent")
	r.PublishExpvar("thanos_test_idempotent")
}

func keysOf(m map[string]json.RawMessage) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
