package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"unsafe"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}

	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}

	// Nil receivers must be inert so uninstrumented datapaths need no guards.
	var nc *Counter
	nc.Inc()
	nc.Add(5)
	if nc.Value() != 0 {
		t.Fatal("nil counter should read 0")
	}
	var ng *Gauge
	ng.Set(9)
	ng.Add(1)
	if ng.Value() != 0 {
		t.Fatal("nil gauge should read 0")
	}
	var nh *Histogram
	nh.Observe(3)
	if nh.Count() != 0 || nh.Sum() != 0 {
		t.Fatal("nil histogram should stay empty")
	}
}

func TestCounterPadding(t *testing.T) {
	// Padded slots: consecutive shard counters must sit on distinct cache
	// lines, i.e. the per-shard stride must be a full 64 bytes.
	if sz := unsafe.Sizeof(Counter{}); sz != 64 {
		t.Fatalf("Counter size = %d bytes, want 64", sz)
	}
	if sz := unsafe.Sizeof(Gauge{}); sz != 64 {
		t.Fatalf("Gauge size = %d bytes, want 64", sz)
	}
}

func TestShardedCounterSum(t *testing.T) {
	s := NewShardedCounter(3)
	s.Shard(0).Add(1)
	s.Shard(1).Add(10)
	s.Shard(2).Add(100)
	if got := s.Value(); got != 111 {
		t.Fatalf("sharded sum = %d, want 111", got)
	}
	if s.Shards() != 3 {
		t.Fatalf("shards = %d, want 3", s.Shards())
	}
	if NewShardedCounter(0).Shards() != 1 {
		t.Fatal("shard count should clamp to 1")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0)  // bits.Len64(0)=0  -> bucket 0 (le 0)
	h.Observe(1)  // len=1 -> bucket 1 (le 1)
	h.Observe(5)  // len=3 -> bucket 3 (le 7)
	h.Observe(7)  // len=3 -> bucket 3
	h.Observe(64) // len=7 -> bucket 7 (le 127)
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 77 {
		t.Fatalf("sum = %d, want 77", h.Sum())
	}
	want := map[int]uint64{0: 1, 1: 1, 3: 2, 7: 1}
	for i := 0; i < NumBuckets; i++ {
		if h.Bucket(i) != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, h.Bucket(i), want[i])
		}
	}
	if BucketBound(3) != 7 {
		t.Fatalf("BucketBound(3) = %d, want 7", BucketBound(3))
	}
	if BucketBound(64) != ^uint64(0) {
		t.Fatal("bucket 64 should be unbounded")
	}
}

func TestRegistryPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("thanos_test_ops_total", "ops")
	g := r.NewGauge("thanos_test_depth", "depth")
	r.NewGaugeFunc("thanos_test_fn", "fn", func() int64 { return 13 })
	h := r.NewHistogram("thanos_test_cycles", "cycles")
	s := r.NewShardedCounter("thanos_test_sharded_total", "sharded", 2)

	c.Add(3)
	g.Set(-2)
	h.Observe(1)
	h.Observe(6)
	s.Shard(0).Inc()
	s.Shard(1).Add(2)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE thanos_test_ops_total counter",
		"thanos_test_ops_total 3",
		"# TYPE thanos_test_depth gauge",
		"thanos_test_depth -2",
		"thanos_test_fn 13",
		"# TYPE thanos_test_cycles histogram",
		`thanos_test_cycles_bucket{le="1"} 1`,
		`thanos_test_cycles_bucket{le="7"} 2`,
		`thanos_test_cycles_bucket{le="+Inf"} 2`,
		"thanos_test_cycles_sum 7",
		"thanos_test_cycles_count 2",
		"# TYPE thanos_test_sharded_total counter",
		"thanos_test_sharded_total 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("a_total", "")
	c.Add(9)
	h := r.NewHistogram("b_cycles", "")
	h.Observe(3)
	snap := r.Snapshot()
	if snap["a_total"].(uint64) != 9 {
		t.Fatalf("snapshot a_total = %v", snap["a_total"])
	}
	hs := snap["b_cycles"].(HistogramSnapshot)
	if hs.Count != 1 || hs.Sum != 3 || hs.Buckets["3"] != 1 {
		t.Fatalf("snapshot histogram = %+v", hs)
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "a_total" || names[1] != "b_cycles" {
		t.Fatalf("names = %v", names)
	}
}

func TestRegistryRejectsBadNames(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("ok_name", "")
	for _, bad := range []string{"", "1abc", "has space", "has-dash"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("name %q should panic", bad)
				}
			}()
			r.NewCounter(bad, "")
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("duplicate name should panic")
			}
		}()
		r.NewCounter("ok_name", "")
	}()
}

func TestConcurrentIncrementsAndScrapes(t *testing.T) {
	r := NewRegistry()
	s := r.NewShardedCounter("c_total", "", 4)
	h := r.NewHistogram("h_cycles", "")
	const perShard = 10000
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := s.Shard(i)
			for j := 0; j < perShard; j++ {
				c.Inc()
				h.Observe(uint64(j))
			}
		}(i)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for k := 0; k < 50; k++ {
			var buf bytes.Buffer
			if err := r.WritePrometheus(&buf); err != nil {
				t.Error(err)
				return
			}
			_ = r.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if got := s.Value(); got != 4*perShard {
		t.Fatalf("sharded total = %d, want %d", got, 4*perShard)
	}
	if h.Count() != 4*perShard {
		t.Fatalf("histogram count = %d, want %d", h.Count(), 4*perShard)
	}
}

func TestStatsBundles(t *testing.T) {
	r := NewRegistry()
	tables := NewTableStats(r, "thanos_tbl", 2)
	if len(tables) != 2 {
		t.Fatalf("table handles = %d, want 2", len(tables))
	}
	tables[0].Adds.Inc()
	tables[1].Adds.Inc()
	tables[0].Size.Set(5)
	snap := r.Snapshot()
	if snap["thanos_tbl_adds_total"].(uint64) != 2 {
		t.Fatalf("adds = %v", snap["thanos_tbl_adds_total"])
	}
	if snap["thanos_tbl_size"].(int64) != 5 {
		t.Fatalf("size = %v", snap["thanos_tbl_size"])
	}

	chains := NewChainStats(r, "thanos_chain", []string{"table", "min(table, cpu)"}, 2)
	if chains[0].Steps() != 2 {
		t.Fatalf("steps = %d, want 2", chains[0].Steps())
	}
	chains[0].Invocations[1].Inc()
	chains[1].Invocations[1].Inc()
	chains[0].Candidates[1].Add(10)
	snap = r.Snapshot()
	if snap["thanos_chain_step1_invocations_total"].(uint64) != 2 {
		t.Fatalf("chain invocations = %v", snap["thanos_chain_step1_invocations_total"])
	}
	if snap["thanos_chain_step1_candidates_total"].(uint64) != 10 {
		t.Fatalf("chain candidates = %v", snap["thanos_chain_step1_candidates_total"])
	}

	dec := NewDecideStats(r, "thanos_dec", 1)[0]
	dec.Decisions.Inc()
	dec.LatencyCycles.Observe(12)
	if dec.LatencyCycles.Count() != 1 {
		t.Fatal("decide latency histogram should record")
	}

	lb := NewLBStats(r, "thanos_lb")
	lb.Placements.Inc()
	lb.AffinityHits.Inc()
	lb.Failures.Inc()
	snap = r.Snapshot()
	if snap["thanos_lb_placements_total"].(uint64) != 1 {
		t.Fatalf("lb placements = %v", snap["thanos_lb_placements_total"])
	}
}
