package telemetry

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"sort"
)

// Handler serves the registry in Prometheus text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// PublishExpvar publishes the registry's Snapshot under name in the
// process-wide expvar namespace (served at /debug/vars). Publishing twice
// under the same name is a no-op rather than expvar's panic, so tests and
// restart loops can call it freely; the first registry to claim a name
// keeps it.
func (r *Registry) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// MuxConfig configures NewMux. Registry is required; everything else is
// optional and its endpoints degrade to empty sets when absent.
type MuxConfig struct {
	// Registry backs /metrics and /debug/vars.
	Registry *Registry
	// Traces supplies the engine's sampled decision traces per request
	// (/trace, /trace/chrome).
	Traces func() []Trace
	// Flight exposes the flight recorder's recent spans on /debug/thanos
	// and /debug/thanos/chrome.
	Flight *FlightRecorder
	// Introspect maps component names to live-status callbacks; each runs
	// per /debug/thanos request and its result is embedded under its name.
	// Callbacks run on the scrape path and may take control-plane locks.
	Introspect map[string]func() any
	// Pprof mounts net/http/pprof under /debug/pprof/ so CPU/heap profiles
	// can be pulled from a live server.
	Pprof bool
}

// Mux assembles the classic observability surface; kept for callers that
// predate the introspection endpoint. Equivalent to NewMux with only
// Registry and Traces set.
func Mux(r *Registry, traces func() []Trace) *http.ServeMux {
	return NewMux(MuxConfig{Registry: r, Traces: traces})
}

// NewMux assembles the full observability surface:
//
//	/metrics              Prometheus text format
//	/debug/vars           expvar JSON (registry snapshot published as "thanos")
//	/trace                sampled decision traces as JSON
//	/trace/chrome         the same traces in Chrome trace_event format
//	/debug/thanos         live introspection: component status + flight recorder
//	/debug/thanos/chrome  flight-recorder spans as a Chrome trace
//	/debug/pprof/         net/http/pprof (only with cfg.Pprof)
//
// All endpoints are scrape-path only — they allocate freely and never
// touch the packet path.
func NewMux(cfg MuxConfig) *http.ServeMux {
	cfg.Registry.PublishExpvar("thanos")
	mux := http.NewServeMux()
	mux.Handle("/metrics", cfg.Registry.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	traces := cfg.Traces
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var ts []Trace
		if traces != nil {
			ts = traces()
		}
		_ = WriteTraceJSON(w, ts)
	})
	mux.HandleFunc("/trace/chrome", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var ts []Trace
		if traces != nil {
			ts = traces()
		}
		_ = WriteChromeTrace(w, ts)
	})
	mux.HandleFunc("/debug/thanos", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = writeIntrospection(w, cfg)
	})
	mux.HandleFunc("/debug/thanos/chrome", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteSpanChromeTrace(w, cfg.Flight.Snapshot())
	})
	if cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// introspection is the JSON shape of /debug/thanos.
type introspection struct {
	Components map[string]any        `json:"components,omitempty"`
	Flight     map[string][]spanJSON `json:"flight,omitempty"`
	Trips      uint64                `json:"flight_trips"`
}

func writeIntrospection(w http.ResponseWriter, cfg MuxConfig) error {
	out := introspection{Trips: cfg.Flight.Trips()}
	if len(cfg.Introspect) > 0 {
		out.Components = make(map[string]any, len(cfg.Introspect))
		names := make([]string, 0, len(cfg.Introspect))
		for name := range cfg.Introspect {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			out.Components[name] = cfg.Introspect[name]()
		}
	}
	if cfg.Flight != nil {
		out.Flight = make(map[string][]spanJSON)
		for name, spans := range cfg.Flight.Snapshot() {
			js := make([]spanJSON, len(spans))
			for i, sp := range spans {
				js[i] = spanJSON{Span: sp, KindName: sp.Kind.String()}
			}
			out.Flight[name] = js
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
