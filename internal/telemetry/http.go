package telemetry

import (
	"expvar"
	"net/http"
)

// Handler serves the registry in Prometheus text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// PublishExpvar publishes the registry's Snapshot under name in the
// process-wide expvar namespace (served at /debug/vars). Publishing twice
// under the same name is a no-op rather than expvar's panic, so tests and
// restart loops can call it freely; the first registry to claim a name
// keeps it.
func (r *Registry) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// Mux assembles the full observability surface:
//
//	/metrics       Prometheus text format
//	/debug/vars    expvar JSON (registry snapshot published as "thanos")
//	/trace         sampled decision traces as JSON
//	/trace/chrome  the same traces in Chrome trace_event format
//
// traces supplies the current trace snapshot per request; pass nil when no
// tracer is wired and the trace endpoints serve empty sets. All endpoints
// are scrape-path only — they allocate freely and never touch the packet
// path.
func Mux(r *Registry, traces func() []Trace) *http.ServeMux {
	r.PublishExpvar("thanos")
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var ts []Trace
		if traces != nil {
			ts = traces()
		}
		_ = WriteTraceJSON(w, ts)
	})
	mux.HandleFunc("/trace/chrome", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var ts []Trace
		if traces != nil {
			ts = traces()
		}
		_ = WriteChromeTrace(w, ts)
	})
	return mux
}
