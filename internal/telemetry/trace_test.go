package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestTracerSamplingCadence(t *testing.T) {
	tr := NewTracer(3, 8, 2)
	var hits []uint64
	for i := 0; i < 10; i++ {
		if s := tr.Sample(); s != nil {
			hits = append(hits, s.Seq)
			if s.Shard != 2 {
				t.Fatalf("shard = %d, want 2", s.Shard)
			}
			if s.NumStages != 0 || s.ID != -1 || s.OK {
				t.Fatalf("sampled trace not reset: %+v", s)
			}
		}
	}
	if len(hits) != 3 || hits[0] != 3 || hits[1] != 6 || hits[2] != 9 {
		t.Fatalf("sampled seqs = %v, want [3 6 9]", hits)
	}
	if tr.Seq() != 10 {
		t.Fatalf("seq = %d, want 10", tr.Seq())
	}

	// Nil tracer: Sample never fires, and the nil-trace mutators are inert.
	var nilTracer *Tracer
	ntr := nilTracer.Sample()
	if ntr != nil {
		t.Fatal("nil tracer should not sample")
	}
	ntr.AddStage("x", 1, 1)
	ntr.Finish(0, 1, true)
	if nilTracer.Snapshot() != nil {
		t.Fatal("nil tracer snapshot should be nil")
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(1, 4, 0)
	for i := 0; i < 10; i++ {
		s := tr.Sample()
		if s == nil {
			t.Fatal("every=1 must sample every decision")
		}
		s.AddStage("step", i, 1)
		s.Finish(0, i, true)
	}
	snap := tr.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot len = %d, want ring capacity 4", len(snap))
	}
	// Ring keeps the newest 4, returned in ascending Seq order.
	for i, want := range []uint64{7, 8, 9, 10} {
		if snap[i].Seq != want {
			t.Fatalf("snapshot[%d].Seq = %d, want %d", i, snap[i].Seq, want)
		}
	}
}

func TestTraceStageOverflow(t *testing.T) {
	tr := NewTracer(1, 1, 0)
	s := tr.Sample()
	for i := 0; i < MaxTraceStages+5; i++ {
		s.AddStage("x", i, 1)
	}
	if s.NumStages != MaxTraceStages {
		t.Fatalf("stages = %d, want clamp at %d", s.NumStages, MaxTraceStages)
	}
}

func TestWriteTraceJSON(t *testing.T) {
	tr := NewTracer(1, 4, 1)
	s := tr.Sample()
	s.AddStage("table", 16, 0)
	s.AddStage("pred(table, cpu < 70)", 9, 3)
	s.Finish(0, 5, true)

	var buf bytes.Buffer
	if err := WriteTraceJSON(&buf, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var decoded []struct {
		Seq    uint64 `json:"seq"`
		Shard  int32  `json:"shard"`
		ID     int32  `json:"id"`
		OK     bool   `json:"ok"`
		Stages []struct {
			Label      string `json:"label"`
			Candidates int32  `json:"candidates"`
			Cycles     uint32 `json:"cycles"`
		} `json:"stages"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 1 {
		t.Fatalf("decoded %d traces, want 1", len(decoded))
	}
	d := decoded[0]
	if d.Seq != 1 || d.Shard != 1 || d.ID != 5 || !d.OK {
		t.Fatalf("decoded trace = %+v", d)
	}
	if len(d.Stages) != 2 || d.Stages[1].Label != "pred(table, cpu < 70)" || d.Stages[1].Candidates != 9 {
		t.Fatalf("decoded stages = %+v", d.Stages)
	}
}

// TestChromeTraceRoundTrip is the acceptance-criteria check: a sampled
// decision trace must round-trip through the Chrome trace_event JSON
// export with its narrowing sequence intact.
func TestChromeTraceRoundTrip(t *testing.T) {
	tr := NewTracer(2, 8, 3)
	tr.Sample() // seq 1: not sampled
	s := tr.Sample()
	if s == nil {
		t.Fatal("seq 2 should be sampled")
	}
	s.AddStage("table", 32, 0)
	s.AddStage("pred(table, mem > 100)", 20, 6)
	s.AddStage("min(table, cpu)", 1, 6)
	s.Finish(1, 17, true)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   uint64         `json:"ts"`
			Dur  uint64         `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int32          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	// One enclosing decide event plus one event per stage.
	if len(decoded.TraceEvents) != 4 {
		t.Fatalf("events = %d, want 4", len(decoded.TraceEvents))
	}
	top := decoded.TraceEvents[0]
	if top.Name != "decide" || top.Ph != "X" || top.Tid != 3 {
		t.Fatalf("decide event = %+v", top)
	}
	if top.Ts != 2*traceSpacing || top.Dur != 12 {
		t.Fatalf("decide ts/dur = %d/%d, want %d/12", top.Ts, top.Dur, 2*traceSpacing)
	}
	if top.Args["id"].(float64) != 17 || top.Args["ok"].(bool) != true {
		t.Fatalf("decide args = %v", top.Args)
	}
	wantStages := []struct {
		name string
		cand float64
		ts   uint64
	}{
		{"table", 32, 2 * traceSpacing},
		{"pred(table, mem > 100)", 20, 2 * traceSpacing},
		{"min(table, cpu)", 1, 2*traceSpacing + 6},
	}
	for i, want := range wantStages {
		ev := decoded.TraceEvents[i+1]
		if ev.Name != want.name || ev.Cat != "stage" {
			t.Fatalf("stage %d = %+v, want name %q", i, ev, want.name)
		}
		if ev.Args["candidates"].(float64) != want.cand {
			t.Fatalf("stage %d candidates = %v, want %v", i, ev.Args["candidates"], want.cand)
		}
		if ev.Ts != want.ts {
			t.Fatalf("stage %d ts = %d, want %d", i, ev.Ts, want.ts)
		}
	}
	// Determinism: exporting the same snapshot twice is byte-identical.
	var buf2 bytes.Buffer
	if err := WriteChromeTrace(&buf2, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("chrome trace export is not deterministic")
	}
}
