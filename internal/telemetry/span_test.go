package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestSpanRingRecordAndSnapshot(t *testing.T) {
	r := NewSpanRing("test", 8)
	r.Record(SpanDecide, 7, 100, 250, 64)
	r.Event(EventQuarantine, 0, 300, 2)
	spans := r.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("snapshot = %d spans, want 2", len(spans))
	}
	if spans[0].Kind != SpanDecide || spans[0].TraceID != 7 || spans[0].Start != 100 || spans[0].End != 250 || spans[0].Arg != 64 {
		t.Fatalf("span 0 = %+v", spans[0])
	}
	if spans[1].Kind != EventQuarantine || spans[1].Start != spans[1].End || spans[1].Arg != 2 {
		t.Fatalf("span 1 = %+v", spans[1])
	}
	if spans[0].Seq >= spans[1].Seq {
		t.Fatalf("snapshot out of record order: %d then %d", spans[0].Seq, spans[1].Seq)
	}
}

func TestSpanRingWraps(t *testing.T) {
	r := NewSpanRing("wrap", 4)
	for i := 0; i < 10; i++ {
		r.Record(SpanDecide, uint64(i+1), int64(i), int64(i), 0)
	}
	spans := r.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("snapshot = %d spans, want capacity 4", len(spans))
	}
	// The ring keeps the newest records: trace IDs 7..10.
	for i, sp := range spans {
		if want := uint64(7 + i); sp.TraceID != want {
			t.Fatalf("span %d trace = %d, want %d", i, sp.TraceID, want)
		}
	}
}

func TestSpanRingNilSafe(t *testing.T) {
	var r *SpanRing
	r.Record(SpanDecide, 1, 2, 3, 4) // must not panic
	r.Event(EventReject, 0, 1, 0)
	if r.Snapshot() != nil {
		t.Fatal("nil ring snapshot should be nil")
	}
	if r.Name() != "" {
		t.Fatal("nil ring name should be empty")
	}
	var f *FlightRecorder
	f.Trip("nil") // must not panic
	if f.Ring("x", 4) != nil {
		t.Fatal("nil recorder should hand out nil rings")
	}
	if f.Snapshot() != nil || f.Trips() != 0 {
		t.Fatal("nil recorder snapshot/trips should be zero values")
	}
	if err := f.WriteJSON(&bytes.Buffer{}, "r"); err != nil {
		t.Fatal(err)
	}
}

func TestSpanRingConcurrentWriters(t *testing.T) {
	r := NewSpanRing("conc", 64)
	// Concurrent snapshots while 8 writers hammer the ring: the seqlock
	// must never yield a torn span (checked via the Arg/Start == TraceID
	// pairing every Record maintains).
	var writers sync.WaitGroup
	for w := 0; w < 8; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 5000; i++ {
				id := uint64(w)<<32 | uint64(i)
				r.Record(SpanDecide, id, int64(id), int64(id)+1, int64(id))
			}
		}(w)
	}
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, sp := range r.Snapshot() {
				if sp.Arg != int64(sp.TraceID) || sp.Start != int64(sp.TraceID) {
					t.Errorf("torn span: %+v", sp)
					return
				}
			}
		}
	}()
	writers.Wait()
	close(stop)
	<-readerDone
}

func TestSpanRingRecordZeroAlloc(t *testing.T) {
	r := NewSpanRing("alloc", 16)
	var i int64
	if n := testing.AllocsPerRun(100, func() {
		r.Record(SpanDecide, uint64(i), i, i+5, 64)
		i++
	}); n != 0 {
		t.Fatalf("SpanRing.Record allocates %v/run, want 0", n)
	}
	var nilRing *SpanRing
	if n := testing.AllocsPerRun(100, func() {
		nilRing.Record(SpanDecide, 1, 1, 2, 0)
	}); n != 0 {
		t.Fatalf("nil SpanRing.Record allocates %v/run, want 0", n)
	}
}

func TestHistogramExemplar(t *testing.T) {
	var h Histogram
	h.ObserveExemplar(1000, 0xabc) // bucket bits.Len64(1000) = 10
	h.ObserveExemplar(1001, 0xdef)
	h.ObserveExemplar(2, 0) // traceID 0: counted, no exemplar
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	if got := h.Exemplar(10); got != 0xdef {
		t.Fatalf("exemplar(10) = %#x, want most recent 0xdef", got)
	}
	if got := h.Exemplar(2); got != 0 {
		t.Fatalf("exemplar(2) = %#x, want 0 (untraced)", got)
	}
	var nilH *Histogram
	nilH.ObserveExemplar(1, 1)
	if nilH.Exemplar(0) != 0 {
		t.Fatal("nil histogram exemplar should be 0")
	}
}

func TestHistogramObserveExemplarZeroAlloc(t *testing.T) {
	var h Histogram
	v := uint64(1)
	if n := testing.AllocsPerRun(100, func() {
		h.ObserveExemplar(v, v)
		v += 131
	}); n != 0 {
		t.Fatalf("ObserveExemplar allocates %v/run, want 0", n)
	}
}

func TestHistogramSnapshotCarriesExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("thanos_span_test_latency", "test")
	h.ObserveExemplar(900, 0x1234) // bucket 10, le 1023
	snap := r.Snapshot()
	hs, ok := snap["thanos_span_test_latency"].(HistogramSnapshot)
	if !ok {
		t.Fatalf("snapshot value = %T", snap["thanos_span_test_latency"])
	}
	if hs.Exemplars["1023"] != 0x1234 {
		t.Fatalf("exemplars = %v, want le 1023 -> 0x1234", hs.Exemplars)
	}
}

func TestFlightRecorderRingIdempotent(t *testing.T) {
	f := NewFlightRecorder()
	a := f.Ring("server", 8)
	b := f.Ring("server", 99)
	if a != b {
		t.Fatal("Ring should return the same ring per component name")
	}
	if a.Name() != "server" {
		t.Fatalf("ring name = %q", a.Name())
	}
}

func TestFlightRecorderDump(t *testing.T) {
	f := NewFlightRecorder()
	f.Ring("server", 8).Record(SpanRingWait, 42, 10, 20, 0)
	f.Ring("engine", 8).Event(EventQuarantine, 0, 30, 1)
	var buf bytes.Buffer
	f.SetAutoDump(&buf)
	f.Trip("shard 1 quarantined")
	if f.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", f.Trips())
	}
	var dump struct {
		Reason     string `json:"reason"`
		Trips      uint64 `json:"trips"`
		Components map[string][]struct {
			Kind    string `json:"kind"`
			TraceID uint64 `json:"trace_id"`
		} `json:"components"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("dump is not JSON: %v\n%s", err, buf.Bytes())
	}
	if dump.Reason != "shard 1 quarantined" || dump.Trips != 1 {
		t.Fatalf("dump header = %+v", dump)
	}
	if len(dump.Components["server"]) != 1 || dump.Components["server"][0].Kind != "ring_wait" || dump.Components["server"][0].TraceID != 42 {
		t.Fatalf("server component = %+v", dump.Components["server"])
	}
	if len(dump.Components["engine"]) != 1 || dump.Components["engine"][0].Kind != "quarantine" {
		t.Fatalf("engine component = %+v", dump.Components["engine"])
	}
}

func TestStitchTrace(t *testing.T) {
	comps := map[string][]Span{
		"client": {
			{Seq: 1, TraceID: 7, Kind: SpanEnqueue, Start: 100, End: 110},
			{Seq: 2, TraceID: 8, Kind: SpanEnqueue, Start: 105, End: 106},
			{Seq: 3, TraceID: 7, Kind: SpanReply, Start: 180, End: 200},
		},
		"server": {
			{Seq: 1, TraceID: 7, Kind: SpanRingWait, Start: 120, End: 140},
			{Seq: 2, TraceID: 7, Kind: SpanDecide, Start: 140, End: 170},
			{Seq: 3, TraceID: 0, Kind: EventReject, Start: 130, End: 130},
		},
	}
	got := StitchTrace(comps, 7)
	if len(got) != 4 {
		t.Fatalf("stitched %d spans, want 4", len(got))
	}
	wantKinds := []SpanKind{SpanEnqueue, SpanRingWait, SpanDecide, SpanReply}
	for i, sp := range got {
		if sp.Kind != wantKinds[i] {
			t.Fatalf("stitched[%d].Kind = %v, want %v", i, sp.Kind, wantKinds[i])
		}
	}
	if StitchTrace(comps, 0) != nil {
		t.Fatal("trace ID 0 must stitch to nothing")
	}
}

func TestWriteSpanChromeTrace(t *testing.T) {
	comps := map[string][]Span{
		"client": {{Seq: 1, TraceID: 7, Kind: SpanEnqueue, Start: 1_000_000, End: 1_050_000}},
		"server": {
			{Seq: 1, TraceID: 7, Kind: SpanDecide, Start: 1_010_000, End: 1_040_000},
			{Seq: 2, Kind: EventQuarantine, Start: 1_020_000, End: 1_020_000, Arg: 3},
		},
	}
	var buf bytes.Buffer
	if err := WriteSpanChromeTrace(&buf, comps); err != nil {
		t.Fatal(err)
	}
	var ct struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   uint64 `json:"ts"`
			Dur  uint64 `json:"dur"`
			Pid  int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatal(err)
	}
	if len(ct.TraceEvents) != 3 {
		t.Fatalf("events = %d, want 3", len(ct.TraceEvents))
	}
	var sawQuarantine, sawEnqueue bool
	for _, ev := range ct.TraceEvents {
		switch ev.Name {
		case "quarantine":
			sawQuarantine = true
			if ev.Ph != "i" {
				t.Fatalf("event span ph = %q, want instant", ev.Ph)
			}
		case "enqueue":
			sawEnqueue = true
			if ev.Ph != "X" || ev.Ts != 0 || ev.Dur != 50 {
				t.Fatalf("enqueue event = %+v (timestamps must rebase to 0)", ev)
			}
		}
	}
	if !sawQuarantine || !sawEnqueue {
		t.Fatalf("missing events in %s", buf.String())
	}
}

func TestSpanKindNames(t *testing.T) {
	for k := SpanEnqueue; k <= SpanReply; k++ {
		if k.String() == "unknown" || k.Event() {
			t.Fatalf("phase kind %d misclassified (%q, event=%v)", k, k.String(), k.Event())
		}
	}
	for _, k := range []SpanKind{EventReject, EventQuarantine, EventResync, EventSwap, EventReconnect, EventProtoErr, EventConnOpen, EventConnClose} {
		if k.String() == "unknown" || !k.Event() {
			t.Fatalf("event kind %d misclassified (%q, event=%v)", k, k.String(), k.Event())
		}
	}
	if !strings.Contains(SpanKind(200).String(), "unknown") {
		t.Fatal("unknown kind should stringify as unknown")
	}
}
