package telemetry

import "testing"

// The telemetry primitives are only admissible on the packet path if every
// hot-path operation is allocation-free in steady state. These tests are
// the dynamic counterpart of the thanoslint hotpathalloc/telemetrysafety
// static walks.

func TestCounterZeroAlloc(t *testing.T) {
	var c Counter
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		_ = c.Value()
	}); n != 0 {
		t.Fatalf("counter ops allocate %v/run, want 0", n)
	}
}

func TestGaugeZeroAlloc(t *testing.T) {
	var g Gauge
	if n := testing.AllocsPerRun(100, func() {
		g.Set(4)
		g.Add(-1)
		_ = g.Value()
	}); n != 0 {
		t.Fatalf("gauge ops allocate %v/run, want 0", n)
	}
}

func TestHistogramObserveZeroAlloc(t *testing.T) {
	var h Histogram
	v := uint64(0)
	if n := testing.AllocsPerRun(100, func() {
		h.Observe(v)
		v += 97
	}); n != 0 {
		t.Fatalf("Observe allocates %v/run, want 0", n)
	}
}

func TestTracerZeroAlloc(t *testing.T) {
	// every=1 is the worst case: every run claims a slot and records a
	// full stage sequence.
	tr := NewTracer(1, 16, 0)
	if n := testing.AllocsPerRun(100, func() {
		s := tr.Sample()
		s.AddStage("table", 32, 0)
		s.AddStage("min(table, cpu)", 1, 6)
		s.Finish(0, 7, true)
	}); n != 0 {
		t.Fatalf("trace sampling allocates %v/run, want 0", n)
	}
	// And the miss path.
	miss := NewTracer(1<<30, 16, 0)
	if n := testing.AllocsPerRun(100, func() {
		s := miss.Sample()
		s.AddStage("x", 1, 1)
		s.Finish(0, -1, false)
	}); n != 0 {
		t.Fatalf("trace miss path allocates %v/run, want 0", n)
	}
}
