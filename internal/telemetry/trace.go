package telemetry

import (
	"encoding/json"
	"io"
	"sort"
)

// MaxTraceStages bounds the number of chain steps a single trace can
// record. The paper's pipelines are shallow (K <= 8 stages, chains of a
// few UFPU/BFPU steps), so a fixed array keeps traces flat in the ring
// with no per-stage allocation.
const MaxTraceStages = 32

// TraceStage is one step of a decision's candidate-set narrowing: the
// step's label (the filter-chain expression or pipeline stage), the
// candidate-set popcount after the step executed, and the step's modeled
// cycle cost.
type TraceStage struct {
	Label      string `json:"label"`
	Candidates int32  `json:"candidates"`
	Cycles     uint32 `json:"cycles"`
}

// Trace is one sampled decision's provenance: which shard ran it, what it
// resolved to, and how the candidate set narrowed step by step. Traces
// live in the Tracer's pre-allocated ring and are recycled in place.
type Trace struct {
	Seq       uint64 // 1-based global decision sequence number at sampling time
	Shard     int32
	Out       int32 // policy output index the caller resolved
	ID        int32 // resolved id, -1 when the result was empty
	OK        bool
	NumStages int32
	Stages    [MaxTraceStages]TraceStage
}

// AddStage appends one narrowing step. Nil traces and overflow beyond
// MaxTraceStages are ignored, so instrumented loops need no guards.
func (tr *Trace) AddStage(label string, candidates int, cycles uint64) {
	if tr == nil || tr.NumStages >= MaxTraceStages {
		return
	}
	s := &tr.Stages[tr.NumStages]
	s.Label = label
	s.Candidates = int32(candidates)
	s.Cycles = uint32(cycles)
	tr.NumStages++
}

// Finish records the decision outcome. Nil-safe.
func (tr *Trace) Finish(out, id int, ok bool) {
	if tr == nil {
		return
	}
	tr.Out = int32(out)
	tr.ID = int32(id)
	tr.OK = ok
}

// Tracer deterministically samples one decision in every `every` and
// records it into a fixed ring buffer. Sample costs one countdown
// decrement and compare on the miss path and recycles a pre-allocated
// ring slot on the hit path — zero allocation and no atomics either way.
// Sampling is sequence-based, not time-based, so a replayed workload
// samples exactly the same decisions.
//
// A Tracer is strictly single-writer (the engine gives each shard its
// own); its fields are plain, so Seq and Snapshot must only run while the
// writer is quiescent — the engine arranges the happens-before edge by
// holding its batch lock across both the decisions and the read.
type Tracer struct {
	every uint64
	shard int32
	seq   uint64
	left  uint64 // decisions until the next sampled one; counts down to 0
	next  uint64
	ring  []Trace
}

// NewTracer returns a tracer sampling 1 in every decisions into a ring of
// the given capacity, tagging traces with the shard id. every and capacity
// are clamped to at least 1.
func NewTracer(every, capacity, shard int) *Tracer {
	if every < 1 {
		every = 1
	}
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{
		every: uint64(every),
		left:  uint64(every),
		shard: int32(shard),
		ring:  make([]Trace, capacity),
	}
}

// Sample advances the decision sequence and returns a reset ring slot when
// this decision is sampled, nil otherwise. Nil tracers always return nil.
//
//thanos:hotpath
func (t *Tracer) Sample() *Trace {
	if t == nil {
		return nil
	}
	t.seq++
	t.left--
	if t.left != 0 {
		return nil
	}
	t.left = t.every
	slot := t.next % uint64(len(t.ring))
	t.next++
	tr := &t.ring[slot]
	tr.Seq = t.seq
	tr.Shard = t.shard
	tr.Out = 0
	tr.ID = -1
	tr.OK = false
	tr.NumStages = 0
	return tr
}

// Seq returns the number of decisions the tracer has seen. Like Snapshot,
// it must not race with Sample on the same tracer.
func (t *Tracer) Seq() uint64 {
	if t == nil {
		return 0
	}
	return t.seq
}

// Snapshot copies the valid ring entries out in ascending Seq order. Must
// not run concurrently with Sample/AddStage/Finish on the same tracer.
func (t *Tracer) Snapshot() []Trace {
	if t == nil {
		return nil
	}
	var out []Trace
	for i := range t.ring {
		if t.ring[i].Seq != 0 {
			out = append(out, t.ring[i])
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// traceJSON is the export view of a Trace: the fixed stage array collapses
// to its populated prefix.
type traceJSON struct {
	Seq    uint64       `json:"seq"`
	Shard  int32        `json:"shard"`
	Out    int32        `json:"out"`
	ID     int32        `json:"id"`
	OK     bool         `json:"ok"`
	Stages []TraceStage `json:"stages"`
}

func toTraceJSON(traces []Trace) []traceJSON {
	out := make([]traceJSON, len(traces))
	for i := range traces {
		tr := &traces[i]
		out[i] = traceJSON{
			Seq:    tr.Seq,
			Shard:  tr.Shard,
			Out:    tr.Out,
			ID:     tr.ID,
			OK:     tr.OK,
			Stages: append([]TraceStage(nil), tr.Stages[:tr.NumStages]...),
		}
	}
	return out
}

// WriteTraceJSON writes the traces as a JSON array of decision records.
func WriteTraceJSON(w io.Writer, traces []Trace) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(toTraceJSON(traces))
}

// chromeEvent is one entry of the Chrome trace_event format
// (chrome://tracing, Perfetto). We emit complete ("X") events only.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int32          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// traceSpacing is the synthetic microsecond gap between consecutive
// sampled decisions on the Chrome timeline. Timestamps are derived from
// the deterministic decision sequence number, not wall-clock time, so the
// exported timeline is reproducible run to run.
const traceSpacing = 1000

// WriteChromeTrace writes the traces in Chrome trace_event JSON. Each
// sampled decision becomes a complete event spanning its modeled cycle
// cost, with one child event per chain step carrying the step label and
// the post-step candidate count; tid is the shard, so each shard renders
// as its own track.
func WriteChromeTrace(w io.Writer, traces []Trace) error {
	ct := chromeTrace{DisplayTimeUnit: "ns", TraceEvents: []chromeEvent{}}
	for i := range traces {
		tr := &traces[i]
		base := tr.Seq * traceSpacing
		var total uint64
		for s := int32(0); s < tr.NumStages; s++ {
			total += uint64(tr.Stages[s].Cycles)
		}
		if total == 0 {
			total = 1
		}
		ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
			Name: "decide",
			Cat:  "decision",
			Ph:   "X",
			Ts:   base,
			Dur:  total,
			Pid:  1,
			Tid:  tr.Shard,
			Args: map[string]any{
				"seq": tr.Seq,
				"out": tr.Out,
				"id":  tr.ID,
				"ok":  tr.OK,
			},
		})
		var elapsed uint64
		for s := int32(0); s < tr.NumStages; s++ {
			st := &tr.Stages[s]
			dur := uint64(st.Cycles)
			if dur == 0 {
				dur = 1
			}
			ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
				Name: st.Label,
				Cat:  "stage",
				Ph:   "X",
				Ts:   base + elapsed,
				Dur:  dur,
				Pid:  1,
				Tid:  tr.Shard,
				Args: map[string]any{"candidates": st.Candidates},
			})
			elapsed += uint64(st.Cycles)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(ct)
}
