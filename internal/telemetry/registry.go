package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// metricKind discriminates the export shape of a registered metric.
type metricKind int

const (
	kindCounter metricKind = iota
	kindSharded
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// metric is one registered name plus the storage behind it. Exactly one of
// the value fields is set, per kind.
type metric struct {
	name    string
	help    string
	kind    metricKind
	counter *Counter
	sharded *ShardedCounter
	gauge   *Gauge
	gaugeFn func() int64
	hist    *Histogram
}

// Registry owns a fixed set of metrics. All registration happens at
// construction time on the control plane (registration takes a lock and
// allocates); after that, hot paths touch only the returned *Counter,
// *Gauge and *Histogram handles, which are pure atomics. Export
// (WritePrometheus, Snapshot) reads the same atomics and can run
// concurrently with hot-path increments.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byName  map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]bool)}
}

// register panics on duplicate or malformed names: both are construction
// bugs, and catching them at wiring time beats silently exporting garbage.
func (r *Registry) register(m *metric) {
	if !validMetricName(m.name) {
		panic("telemetry: invalid metric name " + strconv.Quote(m.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName[m.name] {
		panic("telemetry: duplicate metric name " + strconv.Quote(m.name))
	}
	r.byName[m.name] = true
	r.metrics = append(r.metrics, m)
}

// validMetricName checks the Prometheus name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]* without pulling in regexp.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// NewShardedCounter registers one logical counter striped over shards
// padded slots; the exported value is the sum.
func (r *Registry) NewShardedCounter(name, help string, shards int) *ShardedCounter {
	s := NewShardedCounter(shards)
	r.register(&metric{name: name, help: help, kind: kindSharded, sharded: s})
	return s
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, kind: kindGauge, gauge: g})
	return g
}

// NewGaugeFunc registers a gauge whose value is computed by fn at export
// time. fn runs on the scrape path, never the packet path, so it may take
// locks — but it must be safe to call concurrently with the workload that
// owns the underlying state.
func (r *Registry) NewGaugeFunc(name, help string, fn func() int64) {
	r.register(&metric{name: name, help: help, kind: kindGaugeFunc, gaugeFn: fn})
}

// NewHistogram registers and returns a power-of-two-bucket histogram.
func (r *Registry) NewHistogram(name, help string) *Histogram {
	h := &Histogram{}
	r.register(&metric{name: name, help: help, kind: kindHistogram, hist: h})
	return h
}

// snapshotMetrics copies the metric list under the lock so export walks it
// without holding the lock across user callbacks (gauge funcs).
func (r *Registry) snapshotMetrics() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*metric, len(r.metrics))
	copy(out, r.metrics)
	return out
}

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format (version 0.0.4). Histograms are rendered with
// cumulative le buckets at the power-of-two bounds, trailing empty buckets
// elided, and a final +Inf bucket.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, m := range r.snapshotMetrics() {
		if err := writeMetric(w, m); err != nil {
			return err
		}
	}
	return nil
}

func writeMetric(w io.Writer, m *metric) error {
	typ := "gauge"
	switch m.kind {
	case kindCounter, kindSharded:
		typ = "counter"
	case kindHistogram:
		typ = "histogram"
	}
	if m.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, typ); err != nil {
		return err
	}
	switch m.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s %d\n", m.name, m.counter.Value())
		return err
	case kindSharded:
		_, err := fmt.Fprintf(w, "%s %d\n", m.name, m.sharded.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s %d\n", m.name, m.gauge.Value())
		return err
	case kindGaugeFunc:
		_, err := fmt.Fprintf(w, "%s %d\n", m.name, m.gaugeFn())
		return err
	case kindHistogram:
		return writeHistogram(w, m.name, m.hist)
	}
	return nil
}

func writeHistogram(w io.Writer, name string, h *Histogram) error {
	// Find the highest non-empty bucket so the output stays readable;
	// cumulative counts make the elided tail recoverable from +Inf.
	top := -1
	for i := 0; i < NumBuckets; i++ {
		if h.Bucket(i) != 0 {
			top = i
		}
	}
	var cum uint64
	for i := 0; i <= top && i < 64; i++ {
		cum += h.Bucket(i)
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, BucketBound(i), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %d\n", name, h.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
	return err
}

// HistogramSnapshot is the JSON-friendly view of a histogram.
type HistogramSnapshot struct {
	Count     uint64            `json:"count"`
	Sum       uint64            `json:"sum"`
	Buckets   map[string]uint64 `json:"buckets,omitempty"`   // le bound -> non-cumulative count
	Exemplars map[string]uint64 `json:"exemplars,omitempty"` // le bound -> most recent trace ID
}

// Snapshot returns all metric values keyed by name, suitable for JSON or
// expvar export. Counters and gauges map to numbers, histograms to
// HistogramSnapshot values. The map is freshly allocated; this is a
// control-plane call.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	for _, m := range r.snapshotMetrics() {
		switch m.kind {
		case kindCounter:
			out[m.name] = m.counter.Value()
		case kindSharded:
			out[m.name] = m.sharded.Value()
		case kindGauge:
			out[m.name] = m.gauge.Value()
		case kindGaugeFunc:
			out[m.name] = m.gaugeFn()
		case kindHistogram:
			hs := HistogramSnapshot{Count: m.hist.Count(), Sum: m.hist.Sum()}
			for i := 0; i < NumBuckets; i++ {
				n := m.hist.Bucket(i)
				if n == 0 {
					continue
				}
				if hs.Buckets == nil {
					hs.Buckets = make(map[string]uint64)
				}
				le := "+Inf"
				if i < 64 {
					le = strconv.FormatUint(BucketBound(i), 10)
				}
				hs.Buckets[le] = n
				if ex := m.hist.Exemplar(i); ex != 0 {
					if hs.Exemplars == nil {
						hs.Exemplars = make(map[string]uint64)
					}
					hs.Exemplars[le] = ex
				}
			}
			out[m.name] = hs
		}
	}
	return out
}

// Names returns the registered metric names in sorted order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.metrics))
	for _, m := range r.metrics {
		names = append(names, m.name)
	}
	sort.Strings(names)
	return names
}
