package telemetry

import "strconv"

// This file defines the pre-wired metric bundles the datapath layers hang
// onto: table op counts (SMBM, §5.1), chain selectivity (filter chains and
// the banked pipeline, §5.3), decision outcomes, and load-balancer
// placement. Each bundle is a plain struct of *Counter/*Gauge/*Histogram
// handles — concrete pointers, never interfaces, so instrumented calls
// stay static and pass the hotpathalloc dynamic-call ban.
//
// The New*Stats constructors take a shard count and return one handle
// struct per shard. All shards of one bundle share the same registered
// metric names (backed by ShardedCounter slots), so Prometheus sees one
// logical metric while each engine shard increments its own cache line.
// Single-pipeline callers pass shards=1 and use the first element.

// TableStats counts SMBM operations (§5.1: 2-cycle writes, spare-pool
// reuse) for one table replica. Reads is incremented on the hot Value path
// (one read per metric access per UFPU step); the op counters are
// incremented on the cold write path. Size tracks the live member count.
//
// In the sharded engine every logical write is applied to both snapshots
// of every shard, so the exported add/delete counts measure replica write
// amplification: 2 x shards x logical ops.
type TableStats struct {
	Adds    *Counter
	Deletes *Counter
	Updates *Counter
	Reads   *Counter
	Size    *Gauge
}

// NewTableStats registers <prefix>_{adds,deletes,updates,reads}_total and
// <prefix>_size under r and returns one TableStats handle per shard.
func NewTableStats(r *Registry, prefix string, shards int) []*TableStats {
	adds := r.NewShardedCounter(prefix+"_adds_total", "SMBM add operations applied (per replica)", shards)
	dels := r.NewShardedCounter(prefix+"_deletes_total", "SMBM delete operations applied (per replica)", shards)
	upds := r.NewShardedCounter(prefix+"_updates_total", "SMBM update operations applied (per replica)", shards)
	reads := r.NewShardedCounter(prefix+"_reads_total", "SMBM metric-value reads on the decision path", shards)
	size := r.NewGauge(prefix+"_size", "live members in the table (last replica to write wins)")
	out := make([]*TableStats, shards)
	for i := range out {
		out[i] = &TableStats{
			Adds:    adds.Shard(i),
			Deletes: dels.Shard(i),
			Updates: upds.Shard(i),
			Reads:   reads.Shard(i),
			Size:    size,
		}
	}
	return out
}

// ChainStats is the selectivity provenance of one filter chain (§5.3): per
// step, how often it ran and the cumulative candidate-set popcount after
// it. Candidates/Invocations gives the average post-step selectivity, and
// comparing consecutive steps shows where the chain narrows.
type ChainStats struct {
	// Labels[i] names step i (the chain expression or pipeline stage).
	Labels []string
	// Invocations[i] counts executions of step i.
	Invocations []*Counter
	// Candidates[i] accumulates the candidate-set popcount after step i.
	Candidates []*Counter
}

// Steps returns the number of chain steps.
func (c *ChainStats) Steps() int { return len(c.Invocations) }

// NewChainStats registers, for every step i,
// <prefix>_step<i>_invocations_total and <prefix>_step<i>_candidates_total
// (help text carries the step label), and returns one ChainStats handle
// per shard.
func NewChainStats(r *Registry, prefix string, labels []string, shards int) []*ChainStats {
	out := make([]*ChainStats, shards)
	for i := range out {
		out[i] = &ChainStats{
			Labels:      append([]string(nil), labels...),
			Invocations: make([]*Counter, len(labels)),
			Candidates:  make([]*Counter, len(labels)),
		}
	}
	for step, label := range labels {
		base := prefix + "_step" + strconv.Itoa(step)
		inv := r.NewShardedCounter(base+"_invocations_total", "invocations of chain step: "+label, shards)
		cand := r.NewShardedCounter(base+"_candidates_total", "cumulative post-step candidate popcount of chain step: "+label, shards)
		for i := range out {
			out[i].Invocations[step] = inv.Shard(i)
			out[i].Candidates[step] = cand.Shard(i)
		}
	}
	return out
}

// DecideStats counts decision outcomes and, where the caller knows its
// modeled latency, the per-decision cycle distribution.
type DecideStats struct {
	Decisions     *Counter
	Empty         *Counter
	LatencyCycles *Histogram
}

// NewDecideStats registers <prefix>_decisions_total,
// <prefix>_empty_decisions_total and <prefix>_decision_cycles and returns
// one handle per shard.
func NewDecideStats(r *Registry, prefix string, shards int) []*DecideStats {
	dec := r.NewShardedCounter(prefix+"_decisions_total", "decisions executed", shards)
	empty := r.NewShardedCounter(prefix+"_empty_decisions_total", "decisions whose final candidate set was empty", shards)
	lat := r.NewHistogram(prefix+"_decision_cycles", "modeled decision latency in hardware cycles")
	out := make([]*DecideStats, shards)
	for i := range out {
		out[i] = &DecideStats{Decisions: dec.Shard(i), Empty: empty.Shard(i), LatencyCycles: lat}
	}
	return out
}

// LBStats counts load-balancer placement outcomes: fresh policy decisions,
// connection-table affinity hits, and placements that failed because no
// backend was eligible.
type LBStats struct {
	Placements   *Counter
	AffinityHits *Counter
	Failures     *Counter
}

// NewLBStats registers <prefix>_{placements,affinity_hits,failures}_total.
func NewLBStats(r *Registry, prefix string) *LBStats {
	return &LBStats{
		Placements:   r.NewCounter(prefix+"_placements_total", "fresh placements decided by the policy"),
		AffinityHits: r.NewCounter(prefix+"_affinity_hits_total", "placements served from the connection table"),
		Failures:     r.NewCounter(prefix+"_failures_total", "placements that found no eligible backend"),
	}
}
