package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the number of histogram buckets: one per possible bit
// length of a uint64 (0..64). Bucket i holds observations v with
// bits.Len64(v) == i, i.e. the power-of-two range [2^(i-1), 2^i).
const NumBuckets = 65

// Histogram is a fixed power-of-two-bucket histogram. Observe is a single
// bit-length computation plus three atomic adds — no branching on bucket
// boundaries, no allocation, no locking — which keeps it cheap enough for
// per-decision latency and per-batch occupancy measurements on the packet
// path. A nil *Histogram ignores observations.
//
// The bucket layout is deliberately coarse (powers of two): the paper's
// latency model is cycle-exact, so what matters for observability is the
// order of magnitude of a stall or a queue depth, not its third decimal.
// Buckets are unpadded — a histogram has few writers, and 65 padded slots
// would cost 4 KiB per metric.
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	// exemplars[i] holds the trace ID of the most recent traced observation
	// that landed in bucket i (0 = none yet). Plain atomic stores: the
	// newest exemplar wins, which is exactly the "link a tail bucket to a
	// live timeline" use case.
	exemplars [NumBuckets]atomic.Uint64
}

// Observe records v.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[bits.Len64(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveExemplar records v and, when traceID is non-zero, remembers it as
// the bucket's exemplar so a percentile estimate can be linked back to one
// sampled request's full cross-layer timeline. Same cost class as Observe:
// atomics only, no allocation, nil-safe.
func (h *Histogram) ObserveExemplar(v, traceID uint64) {
	if h == nil {
		return
	}
	b := bits.Len64(v)
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	if traceID != 0 {
		h.exemplars[b].Store(traceID)
	}
}

// Exemplar returns the most recent trace ID observed into bucket i, or 0
// when the bucket has no traced observation.
func (h *Histogram) Exemplar(i int) uint64 {
	if h == nil {
		return 0
	}
	return h.exemplars[i].Load()
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Bucket returns the number of observations in bucket i.
func (h *Histogram) Bucket(i int) uint64 {
	if h == nil {
		return 0
	}
	return h.buckets[i].Load()
}

// BucketBound returns the inclusive upper bound of bucket i: 2^i - 1 for
// i < 64. Bucket 64 is unbounded (callers should render it as +Inf).
func BucketBound(i int) uint64 {
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}
