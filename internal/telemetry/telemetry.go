// Package telemetry is the zero-allocation observability layer of the
// Thanos reproduction. The paper's pitch is line-rate guarantees — one
// packet per clock, fixed per-unit latencies (§5) — and the software
// rendering of that guarantee is a decision path that never allocates and
// never blocks. Instrumentation must live inside that path without voiding
// it, so every hot-path primitive here is built exclusively on sync/atomic
// over storage that is fully pre-allocated at construction:
//
//   - Counter: a cache-line-padded atomic counter. Padding matters because
//     the engine runs one decision goroutine per shard; two shards bumping
//     neighbouring counters must not ping-pong a cache line.
//   - ShardedCounter: one logical metric backed by one padded Counter slot
//     per shard. Hot code increments its own shard's slot; the registry
//     exports the sum.
//   - Gauge: an atomic level (table size, active flows).
//   - Histogram: fixed power-of-two buckets indexed by bit length
//     (histogram.go) — latency and occupancy distributions with no
//     per-observation branching or allocation.
//   - Tracer/Trace: a deterministic 1-in-N sampled decision tracer over a
//     pre-allocated ring (trace.go).
//
// Everything is pre-registered at construction (registry.go); the packet
// path performs zero heap allocations and acquires zero locks, a contract
// enforced statically by the thanoslint hotpathalloc and telemetrysafety
// analyzers and dynamically by AllocsPerRun tests.
//
// Hot-path mutators tolerate nil receivers, so instrumented code runs
// unchanged — and unmeasured — when no telemetry is attached.
package telemetry

import "sync/atomic"

// Counter is a monotonically increasing counter, padded to a cache line so
// per-shard counters never share one. Increments are lock-free and
// allocation-free; a nil *Counter ignores increments.
type Counter struct {
	v atomic.Uint64
	_ [56]byte // pad to 64 bytes: one counter per cache line
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// ShardedCounter is one logical counter striped across per-shard padded
// slots: hot code increments Shard(i) with no cross-shard cache traffic,
// and Value sums the slots at export time.
type ShardedCounter struct {
	slots []Counter
}

// NewShardedCounter returns a sharded counter with n slots (minimum 1).
// Counters handed to hot paths should come from a Registry so they are
// exported; this constructor exists for tests and embedding.
func NewShardedCounter(n int) *ShardedCounter {
	if n < 1 {
		n = 1
	}
	return &ShardedCounter{slots: make([]Counter, n)}
}

// Shard returns the padded counter slot for shard i.
func (s *ShardedCounter) Shard(i int) *Counter { return &s.slots[i] }

// Shards returns the number of slots.
func (s *ShardedCounter) Shards() int { return len(s.slots) }

// Value returns the sum over all slots.
func (s *ShardedCounter) Value() uint64 {
	var total uint64
	for i := range s.slots {
		total += s.slots[i].v.Load()
	}
	return total
}

// Gauge is an instantaneous level (table size, ring depth). Writes are
// lock-free and allocation-free; a nil *Gauge ignores writes.
type Gauge struct {
	v atomic.Int64
	_ [56]byte
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}
