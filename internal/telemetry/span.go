package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// SpanKind names one phase of a request's cross-layer timeline or one
// component state transition. Phases carry a Start/End pair; events are
// instants (Start == End).
type SpanKind uint8

// Phase spans (cross-layer request timeline, stitched by trace ID).
const (
	// SpanEnqueue: client-side admission — the call entered the inflight
	// window and is waiting to be written.
	SpanEnqueue SpanKind = iota + 1
	// SpanWire: the frame's socket write until the server finished reading
	// and decoding it (client send -> server recv).
	SpanWire
	// SpanRingWait: server-side queueing — admitted to the per-connection
	// ring, waiting for the worker to dequeue.
	SpanRingWait
	// SpanDecide: backend execution — engine.DecideBatch across the shards.
	SpanDecide
	// SpanEncode: reply encoding + socket write on the server.
	SpanEncode
	// SpanReply: reply flight + client-side demux (server done -> caller
	// woken with the decoded ids).
	SpanReply
)

// Event spans (component state transitions, flight-recorder material).
const (
	EventReject SpanKind = iota + 32
	EventQuarantine
	EventResync
	EventSwap
	EventReconnect
	EventProtoErr
	EventConnOpen
	EventConnClose
)

var spanKindNames = map[SpanKind]string{
	SpanEnqueue:     "enqueue",
	SpanWire:        "wire",
	SpanRingWait:    "ring_wait",
	SpanDecide:      "decide",
	SpanEncode:      "encode",
	SpanReply:       "reply",
	EventReject:     "reject",
	EventQuarantine: "quarantine",
	EventResync:     "resync",
	EventSwap:       "swap",
	EventReconnect:  "reconnect",
	EventProtoErr:   "proto_error",
	EventConnOpen:   "conn_open",
	EventConnClose:  "conn_close",
}

// String returns the stable lower-case name used in JSON exports.
func (k SpanKind) String() string {
	if s, ok := spanKindNames[k]; ok {
		return s
	}
	return "unknown"
}

// Event reports whether k is a state-transition event rather than a
// request phase.
func (k SpanKind) Event() bool { return k >= EventReject }

// Span is one recorded phase or event. Start/End are unix nanoseconds from
// the recording process's clock; Arg is kind-specific (batch size for
// decide phases, shard index for quarantine/resync, reject reason, ...).
// Seq is the ring claim order and doubles as the validity marker: a zero
// Seq is an empty slot.
type Span struct {
	Seq     uint64   `json:"seq"`
	TraceID uint64   `json:"trace_id,omitempty"`
	Kind    SpanKind `json:"-"`
	Start   int64    `json:"start_ns"`
	End     int64    `json:"end_ns"`
	Arg     int64    `json:"arg,omitempty"`
}

// spanJSON adds the kind name to the export view.
type spanJSON struct {
	Span
	KindName string `json:"kind"`
}

// spanSlot is one seqlock-protected ring slot. ver is odd while a writer
// is mid-update; readers retry (bounded) on odd or changed versions. All
// fields are atomics so concurrent seqlock reads are race-clean; seqKind
// packs the claim sequence (high 56 bits) with the kind (low 8).
type spanSlot struct {
	ver     atomic.Uint64
	seqKind atomic.Uint64
	trace   atomic.Uint64
	start   atomic.Int64
	end     atomic.Int64
	arg     atomic.Int64
}

// SpanRing is a fixed ring of recent spans shared by many writers.
// Record claims a slot with one atomic increment plus a CAS and publishes
// through a per-slot seqlock — no locks, no allocation — so it is safe on
// packet paths and inside the engine's shard goroutines. Readers
// (Snapshot) are scrape-path only and tolerate writers: a slot caught
// mid-write is skipped. Under extreme wrap pressure two writers can claim
// the same slot concurrently; the CAS makes the later one drop its record
// instead of blending fields, which is the right trade for a best-effort
// flight recorder. A nil *SpanRing ignores records, so instrumented code
// needs no wiring guards.
type SpanRing struct {
	name  string
	next  atomic.Uint64
	slots []spanSlot
}

// NewSpanRing returns a ring holding the most recent capacity spans.
// capacity is clamped to at least 1.
func NewSpanRing(name string, capacity int) *SpanRing {
	if capacity < 1 {
		capacity = 1
	}
	return &SpanRing{name: name, slots: make([]spanSlot, capacity)}
}

// Name returns the component name the ring was created under.
func (r *SpanRing) Name() string {
	if r == nil {
		return ""
	}
	return r.name
}

// Record stores one span, overwriting the oldest. Zero-alloc, lock-free,
// nil-safe.
func (r *SpanRing) Record(kind SpanKind, traceID uint64, start, end, arg int64) {
	if r == nil {
		return
	}
	seq := r.next.Add(1)
	s := &r.slots[(seq-1)%uint64(len(r.slots))]
	v := s.ver.Load()
	if v&1 != 0 || !s.ver.CompareAndSwap(v, v+1) {
		// Another writer lapped the ring onto this slot mid-write; drop
		// rather than blend two spans' fields.
		return
	}
	s.seqKind.Store(seq<<8 | uint64(kind))
	s.trace.Store(traceID)
	s.start.Store(start)
	s.end.Store(end)
	s.arg.Store(arg)
	s.ver.Add(1) // even again: stable
}

// Event records an instantaneous state transition at now.
func (r *SpanRing) Event(kind SpanKind, traceID uint64, now, arg int64) {
	r.Record(kind, traceID, now, now, arg)
}

// Snapshot copies out the currently stable spans in ascending record
// order. Scrape-path only; allocates freely.
func (r *SpanRing) Snapshot() []Span {
	if r == nil {
		return nil
	}
	out := make([]Span, 0, len(r.slots))
	for i := range r.slots {
		s := &r.slots[i]
		// Seqlock read: version must be even and unchanged across the copy.
		// A handful of retries rides out an in-progress write; a slot that
		// stays unstable is being rewritten faster than we can read it and
		// is dropped.
		for attempt := 0; attempt < 4; attempt++ {
			v1 := s.ver.Load()
			if v1%2 != 0 {
				continue
			}
			sk := s.seqKind.Load()
			sp := Span{
				Seq:     sk >> 8,
				TraceID: s.trace.Load(),
				Kind:    SpanKind(sk & 0xff),
				Start:   s.start.Load(),
				End:     s.end.Load(),
				Arg:     s.arg.Load(),
			}
			if s.ver.Load() != v1 {
				continue
			}
			if sp.Seq != 0 {
				out = append(out, sp)
			}
			break
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// FlightRecorder is an always-on set of per-component span rings plus an
// auto-dump hook: components record continuously into their rings for
// ~free, and when something trips (shard quarantine, soak failure,
// SIGQUIT) the recent history is dumped as JSON. The zero value is not
// usable; a nil *FlightRecorder hands out nil rings, so wiring is
// optional end to end.
type FlightRecorder struct {
	mu    sync.Mutex
	rings []*SpanRing
	dumpW io.Writer
	trips atomic.Uint64
}

// NewFlightRecorder returns an empty recorder.
func NewFlightRecorder() *FlightRecorder { return &FlightRecorder{} }

// Ring returns the component's ring, creating it with the given capacity
// on first use. Nil-safe (returns a nil ring that ignores records).
func (f *FlightRecorder) Ring(component string, capacity int) *SpanRing {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range f.rings {
		if r.name == component {
			return r
		}
	}
	r := NewSpanRing(component, capacity)
	f.rings = append(f.rings, r)
	return r
}

// SetAutoDump directs Trip dumps to w (stderr in thanosd).
func (f *FlightRecorder) SetAutoDump(w io.Writer) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.dumpW = w
	f.mu.Unlock()
}

// Trips returns how many times the recorder has tripped.
func (f *FlightRecorder) Trips() uint64 {
	if f == nil {
		return 0
	}
	return f.trips.Load()
}

// Snapshot returns the stable contents of every component ring.
func (f *FlightRecorder) Snapshot() map[string][]Span {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	rings := append([]*SpanRing(nil), f.rings...)
	f.mu.Unlock()
	out := make(map[string][]Span, len(rings))
	for _, r := range rings {
		out[r.name] = r.Snapshot()
	}
	return out
}

// flightDump is the JSON shape of one dump.
type flightDump struct {
	Reason     string                `json:"reason,omitempty"`
	Trips      uint64                `json:"trips"`
	Components map[string][]spanJSON `json:"components"`
}

// WriteJSON writes the recorder contents as JSON.
func (f *FlightRecorder) WriteJSON(w io.Writer, reason string) error {
	if f == nil {
		return nil
	}
	dump := flightDump{
		Reason:     reason,
		Trips:      f.trips.Load(),
		Components: map[string][]spanJSON{},
	}
	for name, spans := range f.Snapshot() {
		js := make([]spanJSON, len(spans))
		for i, sp := range spans {
			js[i] = spanJSON{Span: sp, KindName: sp.Kind.String()}
		}
		dump.Components[name] = js
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(dump)
}

// Trip records an incident and dumps the recorder to the auto-dump writer
// (when one is set). Safe from any goroutine; never call it under a hot
// lock — it performs I/O.
func (f *FlightRecorder) Trip(reason string) {
	if f == nil {
		return
	}
	f.trips.Add(1)
	f.mu.Lock()
	w := f.dumpW
	f.mu.Unlock()
	if w != nil {
		_ = f.WriteJSON(w, reason)
	}
}

// StitchTrace pulls every span carrying traceID out of the per-component
// snapshot and orders them by start time: the single cross-layer timeline
// of one sampled request.
func StitchTrace(comps map[string][]Span, traceID uint64) []Span {
	var out []Span
	for _, spans := range comps {
		for _, sp := range spans {
			if sp.TraceID == traceID && traceID != 0 {
				out = append(out, sp)
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Start != out[b].Start {
			return out[a].Start < out[b].Start
		}
		return out[a].Seq < out[b].Seq
	})
	return out
}

// WriteSpanChromeTrace writes per-component spans in Chrome trace_event
// JSON: each component renders as its own process row, phases as complete
// ("X") events and state transitions as instant ("i") events, with
// timestamps rebased to the earliest span so the timeline starts at zero.
func WriteSpanChromeTrace(w io.Writer, comps map[string][]Span) error {
	ct := chromeTrace{DisplayTimeUnit: "ns", TraceEvents: []chromeEvent{}}
	var base int64
	for _, spans := range comps {
		for _, sp := range spans {
			if base == 0 || (sp.Start != 0 && sp.Start < base) {
				base = sp.Start
			}
		}
	}
	names := make([]string, 0, len(comps))
	for name := range comps {
		names = append(names, name)
	}
	sort.Strings(names)
	for pid, name := range names {
		for _, sp := range comps[name] {
			ev := chromeEvent{
				Name: sp.Kind.String(),
				Cat:  name,
				Ph:   "X",
				Ts:   uint64(sp.Start-base) / 1000,
				Dur:  uint64(sp.End-sp.Start) / 1000,
				Pid:  pid + 1,
				Tid:  int32(sp.TraceID & 0x7fffffff),
				Args: map[string]any{"trace_id": sp.TraceID, "arg": sp.Arg, "seq": sp.Seq},
			}
			if sp.Kind.Event() {
				ev.Ph = "i"
				ev.Dur = 0
			}
			if ev.Ph == "X" && ev.Dur == 0 {
				ev.Dur = 1
			}
			ct.TraceEvents = append(ct.TraceEvents, ev)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(ct)
}
