package engine

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/policy"
)

var testSchema = policy.Schema{Attrs: []string{"cpu", "mem", "bw"}}

const testPolicySrc = `
policy lbtest
let ok = intersect(filter(table, cpu < 70), filter(table, mem > 1024), filter(table, bw > 2000))
out primary = random(ok)
out backup  = random(table)
fallback primary -> backup
`

// minPolicy is fully deterministic: its decision depends only on table
// contents, so every shard must return the same answer.
const minPolicySrc = `
policy mintest
out best = min(table, cpu)
`

func newTestEngine(t testing.TB, shards int, src string) *Engine {
	t.Helper()
	e, err := New(Config{
		Shards:   shards,
		Capacity: 64,
		Schema:   testSchema,
		Policy:   policy.MustParse(src),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func fillRandom(t testing.TB, e *Engine, n int, seed int64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	for id := 0; id < n; id++ {
		if err := e.Add(id, []int64{int64(r.Intn(100)), int64(r.Intn(8192)), int64(r.Intn(10000))}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEngineConfigErrors(t *testing.T) {
	if _, err := New(Config{Capacity: 0, Schema: testSchema, Policy: policy.MustParse(minPolicySrc)}); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := New(Config{Capacity: 8, Schema: testSchema}); err == nil {
		t.Error("nil policy accepted")
	}
	// Schema/policy mismatch surfaces the interpreter's validation error.
	if _, err := New(Config{Capacity: 8, Schema: policy.Schema{Attrs: []string{"x"}},
		Policy: policy.MustParse(minPolicySrc)}); err == nil {
		t.Error("unknown attribute accepted")
	}
}

// TestEngineMatchesSequentialOracle drives the deterministic min policy and
// checks every shard's decision against a table-derived oracle, across a
// stream of interleaved writes.
func TestEngineMatchesSequentialOracle(t *testing.T) {
	e := newTestEngine(t, 4, minPolicySrc)
	r := rand.New(rand.NewSource(11))
	oracle := map[int][]int64{} // id -> metrics

	bestID := func() (int, bool) {
		best, found := -1, false
		var bestCPU int64
		for id, vals := range oracle {
			// FIFO tie-break in the SMBM resolves equal minima toward the
			// earliest-inserted entry; avoid ties entirely by construction.
			if !found || vals[0] < bestCPU {
				best, bestCPU, found = id, vals[0], true
			}
		}
		return best, found
	}

	used := map[int64]bool{}
	pkts := make([]Packet, 16)
	for step := 0; step < 200; step++ {
		id := r.Intn(64)
		switch {
		case r.Intn(3) == 0 && len(oracle) > 0:
			for k := range oracle {
				id = k
				break
			}
			if err := e.Delete(id); err != nil {
				t.Fatal(err)
			}
			delete(oracle, id)
		default:
			// Unique cpu values so the min is unambiguous.
			cpu := int64(r.Intn(1 << 30))
			for used[cpu] {
				cpu = int64(r.Intn(1 << 30))
			}
			used[cpu] = true
			vals := []int64{cpu, int64(r.Intn(8192)), int64(r.Intn(10000))}
			if _, ok := oracle[id]; ok {
				if err := e.Update(id, vals); err != nil {
					t.Fatal(err)
				}
			} else if err := e.Add(id, vals); err != nil {
				t.Fatal(err)
			}
			oracle[id] = vals
		}

		for i := range pkts {
			pkts[i] = Packet{Key: uint64(r.Uint32()), Out: 0}
		}
		e.DecideBatch(pkts)
		want, wantOK := bestID()
		for i, p := range pkts {
			if p.OK != wantOK || (wantOK && p.ID != want) {
				t.Fatalf("step %d packet %d: got (%d,%v), want (%d,%v)", step, i, p.ID, p.OK, want, wantOK)
			}
		}
	}
	if err := e.CheckSync(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineFallback checks fallback resolution through the batched path:
// with no resource passing the primary filter, decisions must come from the
// backup output, and an empty table must yield OK=false.
func TestEngineFallback(t *testing.T) {
	e := newTestEngine(t, 2, testPolicySrc)

	pkts := []Packet{{Key: 0}, {Key: 1}, {Key: 2}}
	e.DecideBatch(pkts)
	for i, p := range pkts {
		if p.OK || p.ID != -1 {
			t.Fatalf("packet %d decided (%d,%v) on an empty table", i, p.ID, p.OK)
		}
	}

	// One resource that fails every primary predicate: only the backup
	// (random over the full table) can pick it.
	if err := e.Add(7, []int64{99, 0, 0}); err != nil {
		t.Fatal(err)
	}
	e.DecideBatch(pkts)
	for i, p := range pkts {
		if !p.OK || p.ID != 7 {
			t.Fatalf("packet %d: got (%d,%v), want (7,true)", i, p.ID, p.OK)
		}
	}
}

// TestEngineWriteErrorsLeaveReplicasUntouched mirrors the ReplicaGroup
// property: a rejected write must leave every replica identical.
func TestEngineWriteErrorsLeaveReplicasUntouched(t *testing.T) {
	e := newTestEngine(t, 3, minPolicySrc)
	fillRandom(t, e, 8, 5)

	if err := e.Add(3, []int64{1, 1, 1}); err == nil {
		t.Fatal("duplicate add accepted")
	}
	if err := e.Delete(60); err == nil {
		t.Fatal("delete of absent id accepted")
	}
	if err := e.Update(61, []int64{1, 1, 1}); err == nil {
		t.Fatal("update of absent id accepted")
	}
	if got := e.Size(); got != 8 {
		t.Fatalf("size %d after failed writes, want 8", got)
	}
	if err := e.CheckSync(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineUpsertAndMetrics(t *testing.T) {
	e := newTestEngine(t, 2, minPolicySrc)
	if err := e.Upsert(4, []int64{10, 20, 30}); err != nil {
		t.Fatal(err)
	}
	if err := e.Upsert(4, []int64{11, 21, 31}); err != nil {
		t.Fatal(err)
	}
	vals, ok := e.Metrics(4)
	if !ok || vals[0] != 11 || vals[1] != 21 || vals[2] != 31 {
		t.Fatalf("Metrics(4) = %v, %v", vals, ok)
	}
	if _, ok := e.Metrics(5); ok {
		t.Fatal("Metrics of absent id reported ok")
	}
	if err := e.CheckSync(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineDecideSingle exercises the single-decision convenience path that
// the simulator backends use.
func TestEngineDecideSingle(t *testing.T) {
	e := newTestEngine(t, 3, minPolicySrc)
	if _, ok := e.Decide(); ok {
		t.Fatal("decision on empty table")
	}
	if err := e.Add(9, []int64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// Every shard must agree: id 9 is the only (hence minimal) entry.
	for i := 0; i < 10; i++ {
		id, ok := e.Decide()
		if !ok || id != 9 {
			t.Fatalf("Decide() = (%d, %v), want (9, true)", id, ok)
		}
	}
}

// TestEngineBigBatchAllShards pushes a batch much larger than the chunk size
// so the ring-buffer streaming path (multiple chunks per shard per batch) is
// exercised.
func TestEngineBigBatchAllShards(t *testing.T) {
	e, err := New(Config{
		Shards:    4,
		Capacity:  64,
		Schema:    testSchema,
		Policy:    policy.MustParse(minPolicySrc),
		ChunkSize: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Add(5, []int64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	pkts := make([]Packet, 4096)
	for i := range pkts {
		pkts[i] = Packet{Key: uint64(i)}
	}
	e.DecideBatch(pkts)
	for i, p := range pkts {
		if !p.OK || p.ID != 5 {
			t.Fatalf("packet %d: got (%d,%v), want (5,true)", i, p.ID, p.OK)
		}
	}
}

func TestEngineCloseIdempotentAndDefaults(t *testing.T) {
	e, err := New(Config{Capacity: 8, Schema: testSchema, Policy: policy.MustParse(minPolicySrc)})
	if err != nil {
		t.Fatal(err)
	}
	if e.Shards() < 1 {
		t.Fatalf("default shard count %d", e.Shards())
	}
	if e.Capacity() != 8 {
		t.Fatalf("capacity %d", e.Capacity())
	}
	e.Close()
	e.Close() // second close is a no-op

	// Use after Close degrades instead of panicking: decisions come back
	// undecided, writes report ErrClosed.
	pkts := []Packet{{Key: 1, ID: 7, OK: true}}
	e.DecideBatch(pkts)
	if pkts[0].OK || pkts[0].ID != -1 {
		t.Fatalf("DecideBatch after Close: got (%d,%v), want (-1,false)", pkts[0].ID, pkts[0].OK)
	}
	if id, ok := e.Decide(); ok || id != -1 {
		t.Fatalf("Decide after Close: got (%d,%v), want (-1,false)", id, ok)
	}
	if err := e.Add(1, []int64{1, 2, 3}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Add after Close: err = %v, want ErrClosed", err)
	}
}

func TestEngineBadOutputDegrades(t *testing.T) {
	// An out-of-range output index fails the packet in place instead of
	// panicking: with policy hot-swaps the caller's view of the output count
	// is inherently racy, so this is a degradation, not a programming error.
	e := newTestEngine(t, 1, minPolicySrc)
	pkts := []Packet{{Out: 5, ID: 42, OK: true}, {Out: 0}}
	e.DecideBatch(pkts)
	if pkts[0].OK || pkts[0].ID != -1 {
		t.Fatalf("bad-output packet: got (%d,%v), want (-1,false)", pkts[0].ID, pkts[0].OK)
	}
	// The valid packet in the same batch is still decided normally.
	if err := e.CheckSync(); err != nil {
		t.Fatal(err)
	}
}
