package engine

import (
	"math/rand"
	"sync"
	"testing"
)

// TestEngineConcurrentDecideAndWrite hammers DecideBatch from several
// goroutines while a writer streams add/delete/update through the epoch-swap
// path. Run under -race (make check does), this is the central data-race
// check for the snapshot-publication protocol; the invariant checks at the
// end catch replica divergence or torn writes.
func TestEngineConcurrentDecideAndWrite(t *testing.T) {
	e := newTestEngine(t, 4, testPolicySrc)
	fillRandom(t, e, 32, 3)

	const (
		readers          = 4
		batchesPerReader = 150
		writerOps        = 600
	)

	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			pkts := make([]Packet, 64)
			for b := 0; b < batchesPerReader; b++ {
				for i := range pkts {
					pkts[i] = Packet{Key: uint64(r.Uint32()), Out: r.Intn(2)}
				}
				e.DecideBatch(pkts)
				for i, p := range pkts {
					// The table always has ≥ 1 entry (the writer never
					// empties it), so the backup output guarantees a pick.
					if !p.OK || p.ID < 0 || p.ID >= 64 {
						t.Errorf("batch %d packet %d: bad decision (%d,%v)", b, i, p.ID, p.OK)
						return
					}
				}
			}
		}(int64(g + 1))
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		r := rand.New(rand.NewSource(99))
		present := make([]bool, 64)
		count := 0
		for id := 0; id < 32; id++ {
			present[id] = true
			count++
		}
		for op := 0; op < writerOps; op++ {
			id := r.Intn(64)
			vals := []int64{int64(r.Intn(100)), int64(r.Intn(8192)), int64(r.Intn(10000))}
			switch {
			case present[id] && count > 1 && r.Intn(3) == 0:
				if err := e.Delete(id); err != nil {
					t.Errorf("delete %d: %v", id, err)
					return
				}
				present[id] = false
				count--
			case present[id]:
				if err := e.Update(id, vals); err != nil {
					t.Errorf("update %d: %v", id, err)
					return
				}
			default:
				if err := e.Add(id, vals); err != nil {
					t.Errorf("add %d: %v", id, err)
					return
				}
				present[id] = true
				count++
			}
		}
	}()

	wg.Wait()
	if err := e.CheckSync(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineConcurrentWriters checks that the writer path itself is safe
// under contention: many goroutines upserting disjoint id ranges must leave
// all replicas identical.
func TestEngineConcurrentWriters(t *testing.T) {
	e := newTestEngine(t, 2, minPolicySrc)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				for id := base; id < base+8; id++ {
					if err := e.Upsert(id, []int64{int64(id*100 + rep), 0, 0}); err != nil {
						t.Errorf("upsert %d: %v", id, err)
						return
					}
				}
			}
		}(g * 8)
	}
	wg.Wait()
	if err := e.CheckSync(); err != nil {
		t.Fatal(err)
	}
	if got := e.Size(); got != 32 {
		t.Fatalf("size %d, want 32", got)
	}
}

// TestEngineDecideBatchZeroAlloc pins the steady-state allocation contract:
// once the engine is warm, a full batched decision — partitioning, ring
// hand-off, per-packet policy execution on every shard, write-back — must
// not touch the heap, matching the PR 1 ExecInto contract under concurrency.
func TestEngineDecideBatchZeroAlloc(t *testing.T) {
	e := newTestEngine(t, 4, testPolicySrc)
	fillRandom(t, e, 64, 17)

	pkts := make([]Packet, 256)
	for i := range pkts {
		pkts[i] = Packet{Key: uint64(i) * 0x9E3779B97F4A7C15, Out: i % 2}
	}
	e.DecideBatch(pkts) // warm up ring scratch and index buffers

	allocs := testing.AllocsPerRun(100, func() {
		e.DecideBatch(pkts)
	})
	if allocs != 0 {
		t.Fatalf("steady-state DecideBatch allocates %.1f times per batch, want 0", allocs)
	}
}

// TestEngineWriteThenReadZeroAlloc interleaves table writes with batches —
// the realistic probe-plus-traffic steady state. The decision path must stay
// at zero allocations; the write path is allowed its one closure capture per
// operation (apply takes a func), nothing more, which also pins the SMBM
// spare-pool reuse through the engine's double-buffered replay.
func TestEngineWriteThenReadZeroAlloc(t *testing.T) {
	e := newTestEngine(t, 2, minPolicySrc)
	fillRandom(t, e, 64, 23)

	pkts := make([]Packet, 64)
	for i := range pkts {
		pkts[i] = Packet{Key: uint64(i)}
	}
	vals := []int64{0, 0, 0}
	i := 0
	run := func() {
		i++
		vals[0] = int64(i)
		if err := e.Update(i%64, vals); err != nil {
			t.Fatal(err)
		}
		e.DecideBatch(pkts)
	}
	run() // warm up
	allocs := testing.AllocsPerRun(200, run)
	if allocs > 2 {
		t.Fatalf("steady-state Update+DecideBatch allocates %.1f times per cycle, want ≤ 2", allocs)
	}
}
