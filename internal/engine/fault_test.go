package engine

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/smbm"
	"repro/internal/telemetry"
)

// waitHealth polls until shard si reaches want or the deadline passes.
func waitHealth(t *testing.T, e *Engine, si int, want ShardHealth) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if e.Health(si) == want {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatalf("shard %d stuck in %s, want %s", si, e.Health(si), want)
}

// TestEngineQuarantineAndResync is the headline regression test for the
// former divergence panic: corrupting one shard's replicas must quarantine
// only that shard — DecideBatch keeps serving every packet from the healthy
// shards — and the background resync must rebuild it and return it to
// service, all visible in telemetry and without a single panic.
func TestEngineQuarantineAndResync(t *testing.T) {
	reg := telemetry.NewRegistry()
	e, err := New(Config{
		Shards:    4,
		Capacity:  64,
		Schema:    testSchema,
		Policy:    policy.MustParse(minPolicySrc),
		Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	fillRandom(t, e, 32, 11)

	// Hold the shard in quarantine until the degraded-service assertions
	// below have run; without this the background resync can win the race
	// and heal the shard before we observe the quarantine window.
	var mu sync.Mutex
	hold := true
	e.resyncFailHook = func(shard, attempt int) error {
		mu.Lock()
		defer mu.Unlock()
		if hold {
			return errors.New("held quarantined for the test")
		}
		return nil
	}

	// Silently corrupt shard 2: both its snapshots lose id 5 while the
	// authoritative table keeps it.
	if err := e.CorruptReplica(2, 5); err != nil {
		t.Fatal(err)
	}
	// The next write touching id 5 detects the divergence. It must report,
	// not panic, and it must still land on the healthy shards.
	err = e.Update(5, []int64{1, 2, 3})
	if !errors.Is(err, smbm.ErrReplicaDivergence) {
		t.Fatalf("Update on corrupted shard: err = %v, want ErrReplicaDivergence", err)
	}
	if got := e.Health(2); got == Healthy {
		t.Fatal("shard 2 still healthy after detected divergence")
	}
	if err := e.LastShardError(2); err == nil {
		t.Error("LastShardError(2) = nil, want the divergence")
	}

	// While shard 2 is out, every packet — including those homed on shard 2
	// — must still be decided by the healthy shards.
	pkts := make([]Packet, 1024)
	for i := range pkts {
		pkts[i] = Packet{Key: uint64(i)}
	}
	e.DecideBatch(pkts)
	for i, p := range pkts {
		if !p.OK {
			t.Fatalf("packet %d undecided during quarantine", i)
		}
	}

	// Release the shard: it resyncs from the authoritative table and
	// rejoins; afterwards the whole engine is back in sync (CheckSync covers
	// healthy shards, and all four must be healthy again).
	mu.Lock()
	hold = false
	mu.Unlock()
	waitHealth(t, e, 2, Healthy)
	if err := e.CheckSync(); err != nil {
		t.Fatalf("CheckSync after resync: %v", err)
	}
	if got := e.HealthyShards(); got != 4 {
		t.Fatalf("HealthyShards() = %d after resync, want 4", got)
	}
	if vals, ok := e.Metrics(5); !ok || vals[0] != 1 {
		t.Fatalf("authoritative metrics for id 5 = %v,%v", vals, ok)
	}

	snap := reg.Snapshot()
	if got := snap["thanos_engine_shards_quarantined_total"].(uint64); got != 1 {
		t.Errorf("shards_quarantined_total = %d, want 1", got)
	}
	if got := snap["thanos_engine_resyncs_completed_total"].(uint64); got != 1 {
		t.Errorf("resyncs_completed_total = %d, want 1", got)
	}
	if got := snap["thanos_engine_failover_decisions_total"].(uint64); got == 0 {
		t.Error("failover_decisions_total did not advance during quarantine")
	}
	if got := snap["thanos_engine_quarantined_shards"].(int64); got != 0 {
		t.Errorf("quarantined_shards gauge = %d after resync, want 0", got)
	}
}

// TestEngineResyncRetryBackoff forces the first resync attempts to fail and
// checks the loop retries (counting attempts) until the hook relents.
func TestEngineResyncRetryBackoff(t *testing.T) {
	reg := telemetry.NewRegistry()
	e, err := New(Config{
		Shards:     2,
		Capacity:   32,
		Schema:     testSchema,
		Policy:     policy.MustParse(minPolicySrc),
		Telemetry:  reg,
		ResyncBase: 100 * time.Microsecond,
		ResyncMax:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	fillRandom(t, e, 8, 3)

	var mu sync.Mutex
	attempts := 0
	e.resyncFailHook = func(shard, attempt int) error {
		mu.Lock()
		defer mu.Unlock()
		attempts++
		if attempts <= 3 {
			return fmt.Errorf("injected resync failure %d", attempts)
		}
		return nil
	}
	if err := e.CorruptReplica(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.Delete(0); !errors.Is(err, smbm.ErrReplicaDivergence) {
		t.Fatalf("err = %v, want ErrReplicaDivergence", err)
	}
	waitHealth(t, e, 1, Healthy)
	mu.Lock()
	got := attempts
	mu.Unlock()
	if got != 4 {
		t.Errorf("resync attempts = %d, want 4 (3 injected failures + success)", got)
	}
	if n := reg.Snapshot()["thanos_engine_resync_retries_total"].(uint64); n != 3 {
		t.Errorf("resync_retries_total = %d, want 3", n)
	}
	if err := e.CheckSync(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineVerifyReplicasDetectsSilentCorruption: corruption that no write
// touches is invisible to the broadcast path; the scrubber must find and
// quarantine it.
func TestEngineVerifyReplicasDetectsSilentCorruption(t *testing.T) {
	e := newTestEngine(t, 3, minPolicySrc)
	fillRandom(t, e, 16, 9)
	if n := e.VerifyReplicas(); n != 0 {
		t.Fatalf("clean engine: VerifyReplicas() = %d, want 0", n)
	}
	if err := e.CorruptReplica(0, 7); err != nil {
		t.Fatal(err)
	}
	if n := e.VerifyReplicas(); n != 1 {
		t.Fatalf("VerifyReplicas() = %d, want 1", n)
	}
	waitHealth(t, e, 0, Healthy)
	if err := e.CheckSync(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineAllShardsQuarantined: with every shard out, batches degrade to
// OK=false rather than blocking or panicking, and service resumes once the
// shards resync.
func TestEngineAllShardsQuarantined(t *testing.T) {
	e, err := New(Config{
		Shards:     2,
		Capacity:   32,
		Schema:     testSchema,
		Policy:     policy.MustParse(minPolicySrc),
		ResyncBase: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	fillRandom(t, e, 8, 5)
	// Hold both shards out so the total-outage window is observable.
	var mu sync.Mutex
	hold := true
	e.resyncFailHook = func(shard, attempt int) error {
		mu.Lock()
		defer mu.Unlock()
		if hold {
			return errors.New("held quarantined for the test")
		}
		return nil
	}
	for si := 0; si < 2; si++ {
		if err := e.CorruptReplica(si, 0); err != nil {
			t.Fatal(err)
		}
	}
	if n := e.VerifyReplicas(); n != 2 {
		t.Fatalf("VerifyReplicas() = %d, want 2", n)
	}
	if got := e.HealthyShards(); got != 0 {
		t.Fatalf("HealthyShards() = %d with every shard corrupted, want 0", got)
	}
	pkts := []Packet{{Key: 0}, {Key: 1}}
	e.DecideBatch(pkts)
	for i, p := range pkts {
		if p.OK || p.ID != -1 {
			t.Fatalf("packet %d decided with no healthy shard: (%d,%v)", i, p.ID, p.OK)
		}
	}
	mu.Lock()
	hold = false
	mu.Unlock()
	waitHealth(t, e, 0, Healthy)
	waitHealth(t, e, 1, Healthy)
	if id, ok := e.Decide(); !ok || id < 0 {
		t.Fatalf("Decide after full recovery: (%d,%v)", id, ok)
	}
}

// TestEngineCloseConcurrentDecideBatch is the shutdown-race regression test:
// Close racing in-flight DecideBatch callers must neither panic nor
// deadlock — batches either complete or come back undecided. Run under
// -race (make check / check-fault).
func TestEngineCloseConcurrentDecideBatch(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		e, err := New(Config{Shards: 4, Capacity: 32, Schema: testSchema, Policy: policy.MustParse(minPolicySrc)})
		if err != nil {
			t.Fatal(err)
		}
		fillRandom(t, e, 8, int64(trial))
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				pkts := make([]Packet, 64)
				for rep := 0; rep < 50; rep++ {
					for i := range pkts {
						pkts[i] = Packet{Key: uint64(g*1000 + i)}
					}
					e.DecideBatch(pkts)
					for i, p := range pkts {
						// Either decided (pre-Close) or failed (post-Close);
						// never a stale in-between.
						if p.OK && p.ID < 0 {
							t.Errorf("packet %d: OK with negative id", i)
						}
					}
				}
			}(g)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			e.Close()
		}()
		close(start)
		wg.Wait()
		e.Close()
	}
}

// TestEngineCloseDuringResync: closing while a shard is mid-backoff must
// not hang Close or leak the resync goroutine.
func TestEngineCloseDuringResync(t *testing.T) {
	e, err := New(Config{
		Shards:     2,
		Capacity:   32,
		Schema:     testSchema,
		Policy:     policy.MustParse(minPolicySrc),
		ResyncBase: time.Hour, // backoff far beyond the test's lifetime
	})
	if err != nil {
		t.Fatal(err)
	}
	fillRandom(t, e, 8, 2)
	e.resyncFailHook = func(shard, attempt int) error {
		return errors.New("never succeeds")
	}
	if err := e.CorruptReplica(1, 0); err != nil {
		t.Fatal(err)
	}
	if n := e.VerifyReplicas(); n != 1 {
		t.Fatalf("VerifyReplicas() = %d, want 1", n)
	}
	done := make(chan struct{})
	go func() {
		e.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung waiting for a backing-off resync")
	}
}
