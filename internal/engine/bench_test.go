package engine

import (
	"fmt"
	"testing"

	"repro/internal/policy"
	"repro/internal/telemetry"
)

// BenchmarkEngineDecideBatch measures batched decision throughput as the
// shard count grows. Each iteration decides a 4096-packet batch under the
// resource-aware load-balancing policy over a 64-entry table; the reported
// decisions/s metric is the headline scaling number (near-linear up to
// GOMAXPROCS on multicore hosts, where 8 shards sustain ≥3x the 1-shard
// rate). Allocations are reported so the zero-alloc steady state is visible
// in the -benchmem column.
func BenchmarkEngineDecideBatch(b *testing.B) {
	const batch = 4096
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			e, err := New(Config{
				Shards:   shards,
				Capacity: 64,
				Schema:   testSchema,
				Policy:   policy.MustParse(testPolicySrc),
			})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			fillRandom(b, e, 64, 1)

			pkts := make([]Packet, batch)
			for i := range pkts {
				pkts[i] = Packet{Key: uint64(i) * 0x9E3779B97F4A7C15}
			}
			e.DecideBatch(pkts) // warm up
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.DecideBatch(pkts)
			}
			b.StopTimer()
			perOp := b.Elapsed().Seconds() / float64(b.N)
			if perOp > 0 {
				b.ReportMetric(float64(batch)/perOp, "decisions/s")
			}
		})
	}
}

// BenchmarkEngineDecideBatchTelemetry is BenchmarkEngineDecideBatch with
// full telemetry attached (counters, chain stats, default 1-in-1024 trace
// sampling) at a fixed 2 shards — the instrumented column of the ≤5%
// overhead contract that TestTelemetryOverheadSmoke gates in CI.
func BenchmarkEngineDecideBatchTelemetry(b *testing.B) {
	const batch = 4096
	e, err := New(Config{
		Shards:    2,
		Capacity:  64,
		Schema:    testSchema,
		Policy:    policy.MustParse(testPolicySrc),
		Telemetry: telemetry.NewRegistry(),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	fillRandom(b, e, 64, 1)

	pkts := make([]Packet, batch)
	for i := range pkts {
		pkts[i] = Packet{Key: uint64(i) * 0x9E3779B97F4A7C15}
	}
	e.DecideBatch(pkts) // warm up
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.DecideBatch(pkts)
	}
}

// BenchmarkEngineWrite measures the cost of one propagated write (shadow
// mutate + epoch swap + replay) as shards grow — the price of replica
// consistency, linear in the replica count like the paper's broadcast
// updates.
func BenchmarkEngineWrite(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			e, err := New(Config{
				Shards:   shards,
				Capacity: 64,
				Schema:   testSchema,
				Policy:   policy.MustParse(minPolicySrc),
			})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			fillRandom(b, e, 64, 1)
			vals := []int64{0, 0, 0}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vals[0] = int64(i)
				if err := e.Update(i%64, vals); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
