package engine

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/policy"
	"repro/internal/telemetry"
)

const maxPolicySrc = `
policy maxtest
out best = max(table, cpu)
`

// twoOutSrc has two outputs where minPolicySrc has one, so swapping between
// them exercises the output-count change path.
const twoOutSrc = `
policy twotest
out lo = min(table, cpu)
out hi = max(table, cpu)
`

// TestSwapPolicyChangesDecisions proves a hot-swap takes effect: the same
// table answers min before the swap and max after, on every shard.
func TestSwapPolicyChangesDecisions(t *testing.T) {
	e := newTestEngine(t, 4, minPolicySrc)
	for id, cpu := range []int64{30, 10, 50, 20} {
		if err := e.Add(id, []int64{cpu, 0, 0}); err != nil {
			t.Fatal(err)
		}
	}
	pkts := make([]Packet, 32)
	for i := range pkts {
		pkts[i] = Packet{Key: uint64(i)}
	}
	e.DecideBatch(pkts)
	for i := range pkts {
		if !pkts[i].OK || pkts[i].ID != 1 { // min cpu = 10 at id 1
			t.Fatalf("pre-swap packet %d: (%d,%v), want (1,true)", i, pkts[i].ID, pkts[i].OK)
		}
	}
	if err := e.SwapPolicy(policy.MustParse(maxPolicySrc)); err != nil {
		t.Fatal(err)
	}
	e.DecideBatch(pkts)
	for i := range pkts {
		if !pkts[i].OK || pkts[i].ID != 2 { // max cpu = 50 at id 2
			t.Fatalf("post-swap packet %d: (%d,%v), want (2,true)", i, pkts[i].ID, pkts[i].OK)
		}
	}
	if e.Policy().Name != "maxtest" {
		t.Fatalf("Policy() = %q after swap", e.Policy().Name)
	}
	// Table writes after the swap propagate through the rewrapped snapshots.
	if err := e.Add(9, []int64{99, 0, 0}); err != nil {
		t.Fatal(err)
	}
	e.DecideBatch(pkts)
	for i := range pkts {
		if pkts[i].ID != 9 {
			t.Fatalf("post-swap post-write packet %d: id %d, want 9", i, pkts[i].ID)
		}
	}
	if err := e.CheckSync(); err != nil {
		t.Fatal(err)
	}
}

// TestSwapPolicyValidation: a bad policy must be rejected atomically, the
// old policy keeps serving everywhere.
func TestSwapPolicyValidation(t *testing.T) {
	e := newTestEngine(t, 2, minPolicySrc)
	if err := e.Add(0, []int64{5, 0, 0}); err != nil {
		t.Fatal(err)
	}
	bad := policy.MustParse("policy bad\nout o = min(table, nosuchattr)")
	if err := e.SwapPolicy(bad); err == nil {
		t.Fatal("swap to policy with unknown attribute accepted")
	}
	if err := e.SwapPolicy(nil); err == nil {
		t.Fatal("swap to nil policy accepted")
	}
	if id, ok := e.Decide(); !ok || id != 0 {
		t.Fatalf("decide after rejected swap: (%d,%v)", id, ok)
	}
	if e.Policy().Name != "mintest" {
		t.Fatalf("policy replaced by rejected swap: %q", e.Policy().Name)
	}
}

// TestSwapPolicyOutputCountShrink: packets addressing an output that the
// swapped-in policy no longer has degrade to (-1,false); valid outputs keep
// working. Exercises both the partitioner check and the per-snapshot check.
func TestSwapPolicyOutputCountShrink(t *testing.T) {
	e := newTestEngine(t, 2, twoOutSrc)
	for id, cpu := range []int64{30, 10, 50} {
		if err := e.Add(id, []int64{cpu, 0, 0}); err != nil {
			t.Fatal(err)
		}
	}
	pkts := []Packet{{Key: 1, Out: 0}, {Key: 2, Out: 1}}
	e.DecideBatch(pkts)
	if pkts[0].ID != 1 || pkts[1].ID != 2 {
		t.Fatalf("two-output decisions: (%d,%d), want (1,2)", pkts[0].ID, pkts[1].ID)
	}
	if err := e.SwapPolicy(policy.MustParse(minPolicySrc)); err != nil {
		t.Fatal(err)
	}
	e.DecideBatch(pkts)
	if pkts[0].ID != 1 || !pkts[0].OK {
		t.Fatalf("output 0 after shrink: (%d,%v)", pkts[0].ID, pkts[0].OK)
	}
	if pkts[1].OK || pkts[1].ID != -1 {
		t.Fatalf("dropped output 1 after shrink: (%d,%v), want (-1,false)", pkts[1].ID, pkts[1].OK)
	}
}

// TestSwapPolicyAfterClose degrades like every other control-plane write.
func TestSwapPolicyAfterClose(t *testing.T) {
	e := newTestEngine(t, 1, minPolicySrc)
	e.Close()
	if err := e.SwapPolicy(policy.MustParse(maxPolicySrc)); !errors.Is(err, ErrClosed) {
		t.Fatalf("SwapPolicy after Close: %v, want ErrClosed", err)
	}
}

// TestSwapPolicyConcurrentDecides hammers DecideBatch from several
// goroutines while policies flip between min and max, with table writes
// interleaved. Every decision must be one of the two snapshots' answers —
// never a torn or stale-table result — and the engine must stay in sync.
func TestSwapPolicyConcurrentDecides(t *testing.T) {
	e := newTestEngine(t, 4, minPolicySrc)
	// cpu values chosen so min and max ids are stable: id 1 is always min,
	// id 2 always max.
	for id, cpu := range []int64{500, 100, 900} {
		if err := e.Add(id, []int64{cpu, 0, 0}); err != nil {
			t.Fatal(err)
		}
	}
	minPol := policy.MustParse(minPolicySrc)
	maxPol := policy.MustParse(maxPolicySrc)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pkts := make([]Packet, 64)
			for !stop.Load() {
				for i := range pkts {
					pkts[i] = Packet{Key: uint64(g*64 + i)}
				}
				e.DecideBatch(pkts)
				for i := range pkts {
					if !pkts[i].OK || (pkts[i].ID != 1 && pkts[i].ID != 2) {
						t.Errorf("mid-swap decision: (%d,%v)", pkts[i].ID, pkts[i].OK)
						stop.Store(true)
						return
					}
				}
			}
		}(g)
	}
	for i := 0; i < 50 && !stop.Load(); i++ {
		pol := minPol
		if i%2 == 0 {
			pol = maxPol
		}
		if err := e.SwapPolicy(pol); err != nil {
			t.Error(err)
			break
		}
		// Interleave a write so the swap and write epoch publishes contend.
		id := 40 + i%10
		if err := e.Add(id, []int64{700, 0, 0}); err != nil {
			t.Error(err)
			break
		}
		if err := e.Delete(id); err != nil {
			t.Error(err)
			break
		}
	}
	stop.Store(true)
	wg.Wait()
	if err := e.CheckSync(); err != nil {
		t.Fatal(err)
	}
}

// TestSwapPolicyTelemetry: the swap counter moves, and chain telemetry
// detaches cleanly when the program shape changes (no panic, counters for
// decisions keep counting).
func TestSwapPolicyTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	e, err := New(Config{Shards: 2, Capacity: 16, Schema: testSchema,
		Policy: policy.MustParse(minPolicySrc), Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Add(0, []int64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := e.SwapPolicy(policy.MustParse(twoOutSrc)); err != nil {
		t.Fatal(err)
	}
	if id, ok := e.Decide(); !ok || id != 0 {
		t.Fatalf("decide after telemetry swap: (%d,%v)", id, ok)
	}
	snap := reg.Snapshot()
	if got := snap["thanos_engine_policy_swaps_total"].(uint64); got != 1 {
		t.Fatalf("policy_swaps_total = %d, want 1", got)
	}
	if got := snap["thanos_engine_decisions_total"].(uint64); got == 0 {
		t.Fatal("decisions_total did not move after swap")
	}
	// A quarantine after the swap must resync with the swapped-in policy
	// (and must not panic re-attaching mismatched chain telemetry).
	if err := e.CorruptReplica(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.Update(0, []int64{9, 9, 9}); err == nil {
		t.Fatal("write touching corrupted id did not report divergence")
	}
	waitHealth(t, e, 0, Healthy)
	if err := e.CheckSync(); err != nil {
		t.Fatal(err)
	}
}
