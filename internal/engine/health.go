package engine

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/policy"
	"repro/internal/smbm"
	"repro/internal/telemetry"
)

// ShardHealth is a shard's position in the degradation state machine.
//
// A shard is Healthy while its two snapshots track the authoritative table
// op-for-op. The first write it rejects after the authority accepted it (or
// a divergence found by VerifyReplicas) moves it to Quarantined: the batch
// partitioner steers its traffic to healthy shards and writers stop
// broadcasting to it. A background loop then moves it Quarantined →
// Resyncing while it rebuilds both snapshots from the authority, and back to
// Healthy on success — or back to Quarantined, to retry with capped
// exponential backoff, on failure.
type ShardHealth int32

const (
	// Healthy: in the serving and broadcast sets.
	Healthy ShardHealth = iota
	// Quarantined: diverged from the authoritative table; out of the
	// serving set, awaiting resync.
	Quarantined
	// Resyncing: a rebuild from the authoritative table is in progress;
	// still out of the serving set.
	Resyncing
)

func (h ShardHealth) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Quarantined:
		return "quarantined"
	case Resyncing:
		return "resyncing"
	default:
		return fmt.Sprintf("ShardHealth(%d)", int32(h))
	}
}

// Health returns shard si's current health state. Safe for concurrent use.
func (e *Engine) Health(si int) ShardHealth {
	return ShardHealth(e.shards[si].health.Load())
}

// HealthyShards returns the number of shards currently in the serving set.
func (e *Engine) HealthyShards() int {
	e.pmu.Lock()
	defer e.pmu.Unlock()
	return e.live
}

// LastShardError returns the divergence that most recently quarantined
// shard si, or nil if it never diverged.
func (e *Engine) LastShardError(si int) error {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	return e.shards[si].lastErr
}

// ShardStatus is one shard's slice of an engine introspection snapshot.
type ShardStatus struct {
	Health string `json:"health"`
	// LastErr is the divergence that most recently quarantined the shard,
	// empty if it never diverged.
	LastErr string `json:"last_err,omitempty"`
	// TableVersion is the active snapshot's SMBM mutation counter — the
	// shard's epoch position. Healthy shards agree with AuthVersion modulo
	// writes in flight.
	TableVersion uint64 `json:"table_version"`
	TableSize    int    `json:"table_size"`
}

// EngineStatus is the engine's introspection snapshot (/debug/thanos).
type EngineStatus struct {
	Shards      []ShardStatus `json:"shards"`
	Live        int           `json:"live"` // shards in the serving set
	Resources   int           `json:"resources"`
	AuthVersion uint64        `json:"auth_version"`
}

// Introspect snapshots the engine's degradation state: per-shard health,
// last divergence, and active-table version/size, plus the authoritative
// table's view. Control-plane only — it takes the writer lock (then the
// producer lock for the live count; lock order wmu → pmu), so the snapshot
// is consistent with respect to writes, while decisions keep flowing.
func (e *Engine) Introspect() EngineStatus {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	st := EngineStatus{
		Shards:      make([]ShardStatus, 0, len(e.shards)),
		Resources:   e.auth.Size(),
		AuthVersion: e.auth.Version(),
	}
	for _, s := range e.shards {
		ss := ShardStatus{Health: ShardHealth(s.health.Load()).String()}
		if s.lastErr != nil {
			ss.LastErr = s.lastErr.Error()
		}
		// Safe to read under wmu: readers never mutate tables, and every
		// mutator (apply, swap, resync) holds wmu, which we hold.
		act := s.active.Load()
		ss.TableVersion = act.table.Version()
		ss.TableSize = act.table.Size()
		st.Shards = append(st.Shards, ss)
	}
	e.pmu.Lock()
	st.Live = e.live
	e.pmu.Unlock()
	return st
}

// quarantineLocked moves a healthy shard to Quarantined, pulls it out of the
// steering table (failover), and starts its background resync loop. Caller
// holds wmu. Idempotent per transition: only the Healthy→Quarantined edge
// spawns a resync.
//
//thanos:wallclock flight-recorder timestamps are diagnostics, not simulation state
func (e *Engine) quarantineLocked(si int, cause error) {
	s := e.shards[si]
	if !s.health.CompareAndSwap(int32(Healthy), int32(Quarantined)) {
		return
	}
	s.lastErr = cause
	e.quarCtr.Inc()
	e.quarGauge.Add(1)
	// The flight record is atomics-only (safe under wmu); the OnQuarantine
	// callback may do I/O, so it runs on the resync goroutine, not here.
	e.flight.Event(telemetry.EventQuarantine, 0, time.Now().UnixNano(), int64(si))
	e.rebuildSteering()
	e.bg.Add(1)
	go e.resyncLoop(si, cause)
}

// rebuildSteering recomputes the home-shard → serving-shard table from the
// current health states. Healthy shards serve themselves; a quarantined
// home's traffic is spread over the healthy shards deterministically (k-th
// dead shard → k mod live). With no healthy shards every entry is -1 and
// the partitioner fails batches instead of dispatching them. Callers hold
// wmu; this takes pmu (lock order wmu → pmu), so it also serializes with
// in-flight batch partitioning.
func (e *Engine) rebuildSteering() {
	e.pmu.Lock()
	defer e.pmu.Unlock()
	liveIdx := make([]int32, 0, len(e.shards))
	for i, s := range e.shards {
		if ShardHealth(s.health.Load()) == Healthy {
			liveIdx = append(liveIdx, int32(i))
		}
	}
	e.live = len(liveIdx)
	if e.live == 0 {
		for i := range e.steer {
			e.steer[i] = -1
		}
		return
	}
	k := 0
	for i := range e.steer {
		if ShardHealth(e.shards[i].health.Load()) == Healthy {
			e.steer[i] = int32(i)
		} else {
			e.steer[i] = liveIdx[k%len(liveIdx)]
			k++
		}
	}
}

// resyncLoop drives one quarantined shard back to health, retrying failed
// rebuilds with capped exponential backoff until it succeeds or the engine
// closes. It also delivers the OnQuarantine callback: this goroutine holds
// no engine lock, so the callback is free to block or dump diagnostics.
//
//thanos:wallclock flight-recorder timestamps are diagnostics, not simulation state
func (e *Engine) resyncLoop(si int, cause error) {
	defer e.bg.Done()
	if e.onQuar != nil {
		e.onQuar(si, cause)
	}
	delay := e.resyncBase
	for attempt := 0; ; attempt++ {
		select {
		case <-e.closedCh:
			return
		default:
		}
		if err := e.resyncShard(si, attempt); err == nil {
			e.resyncCtr.Inc()
			e.quarGauge.Add(-1)
			e.flight.Event(telemetry.EventResync, 0, time.Now().UnixNano(), int64(si))
			return
		}
		e.retryCtr.Inc()
		select {
		case <-e.closedCh:
			return
		case <-time.After(delay):
		}
		delay *= 2
		if delay > e.resyncMax {
			delay = e.resyncMax
		}
	}
}

// resyncShard rebuilds both snapshots of a quarantined shard from an
// epoch-consistent view of the authoritative table and publishes them with
// the usual epoch protocol: store the fresh active snapshot, spin until the
// reader has drained whichever retired snapshot it may still be pinning,
// then return the shard to the serving set. Holding wmu for the duration
// gives the rebuild a stable authoritative snapshot; readers keep serving
// from healthy shards throughout.
func (e *Engine) resyncShard(si, attempt int) error {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	select {
	case <-e.closedCh:
		return ErrClosed
	default:
	}
	if e.resyncFailHook != nil {
		if err := e.resyncFailHook(si, attempt); err != nil {
			return err
		}
	}
	s := e.shards[si]
	s.health.Store(int32(Resyncing))
	old0, old1 := s.states[0], s.states[1]
	ids := e.auth.Members().IDs()
	var fresh [2]*snapshot
	for j := range fresh {
		t := smbm.New(e.auth.Capacity(), e.auth.NumMetrics())
		for _, id := range ids {
			vals, ok := e.auth.Metrics(id)
			if !ok {
				s.health.Store(int32(Quarantined))
				return fmt.Errorf("engine: resync shard %d: id %d vanished from authority", si, id)
			}
			if err := t.Add(id, vals); err != nil {
				s.health.Store(int32(Quarantined))
				return fmt.Errorf("engine: resync shard %d: %w", si, err)
			}
		}
		it, err := policy.NewInterp(t, e.schema, e.pol)
		if err != nil {
			s.health.Store(int32(Quarantined))
			return fmt.Errorf("engine: resync shard %d: %w", si, err)
		}
		// Chain telemetry is labeled per program step at construction time;
		// after a policy hot-swap the rebuilt program may have a different
		// shape, in which case the per-step counters no longer apply and the
		// interpreter runs unattached (table and decision counters continue).
		if s.chainTel != nil && s.chainTel.Steps() == it.Steps() {
			it.AttachTelemetry(s.chainTel)
		}
		if s.tableTel != nil {
			t.AttachTelemetry(s.tableTel)
		}
		fresh[j] = &snapshot{table: t, interp: it, pol: e.pol}
	}
	s.states[0], s.states[1] = fresh[0], fresh[1]
	s.active.Store(fresh[0])
	e.swaps.Inc()
	for {
		u := s.inUse.Load()
		if u != old0 && u != old1 {
			break
		}
		e.waitSpins.Inc()
		runtime.Gosched()
	}
	s.health.Store(int32(Healthy))
	e.rebuildSteering()
	return nil
}

// CorruptReplica forcibly removes resource id from both snapshots of shard
// si while leaving the authoritative table untouched — the software stand-in
// for a pipeline whose table memory no longer matches the control plane
// (bit flip, missed update). The corruption follows the normal epoch
// protocol, so the reader never observes a half-written table; it simply
// starts returning decisions computed from stale contents until the
// divergence is detected (by the next write touching id, or VerifyReplicas)
// and the shard is quarantined. Fault-injection hook, used by
// internal/fault and the regression tests.
func (e *Engine) CorruptReplica(si, id int) error {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	select {
	case <-e.closedCh:
		return ErrClosed
	default:
	}
	if si < 0 || si >= len(e.shards) {
		return fmt.Errorf("engine: shard %d out of range [0,%d)", si, len(e.shards))
	}
	s := e.shards[si]
	if ShardHealth(s.health.Load()) != Healthy {
		return fmt.Errorf("engine: shard %d is %s, not healthy", si, ShardHealth(s.health.Load()))
	}
	return e.applyShard(s, func(t *smbm.SMBM) error { return t.Delete(id) })
}

// VerifyReplicas audits every healthy shard against the authoritative table
// and quarantines any replica that silently diverged (e.g. injected
// corruption that no subsequent write has touched). It returns the number of
// shards newly quarantined. This is the detection half of the scrubbing
// loop a control plane would run periodically; the repair half is the
// background resync that quarantine starts.
func (e *Engine) VerifyReplicas() int {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	ids := e.auth.Members().IDs()
	n := 0
	for si, s := range e.shards {
		if ShardHealth(s.health.Load()) != Healthy {
			continue
		}
		if err := e.verifyShard(s, ids); err != nil {
			e.quarantineLocked(si, err)
			n++
		}
	}
	return n
}

// verifyShard compares both snapshots of a shard against the authoritative
// contents. Caller holds wmu (no writes in flight); snapshot reads are safe
// concurrently with the shard's reader, which never mutates tables.
func (e *Engine) verifyShard(s *shard, ids []int) error {
	for sti, st := range s.states {
		if st.table.Size() != len(ids) {
			return fmt.Errorf("engine: replica state %d holds %d resources, authority holds %d",
				sti, st.table.Size(), len(ids))
		}
		for _, id := range ids {
			want, _ := e.auth.Metrics(id)
			got, ok := st.table.Metrics(id)
			if !ok {
				return fmt.Errorf("engine: replica state %d missing id %d", sti, id)
			}
			for j := range want {
				if got[j] != want[j] {
					return fmt.Errorf("engine: replica state %d id %d metric %d = %d, authority has %d",
						sti, id, j, got[j], want[j])
				}
			}
		}
	}
	return nil
}
