package engine

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"repro/internal/policy"
	"repro/internal/telemetry"
)

func newTelemetryEngine(t testing.TB, shards int, src string, reg *telemetry.Registry, traceEvery int) *Engine {
	t.Helper()
	e, err := New(Config{
		Shards:     shards,
		Capacity:   64,
		Schema:     testSchema,
		Policy:     policy.MustParse(src),
		Telemetry:  reg,
		TraceEvery: traceEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func snapCounter(t *testing.T, snap map[string]any, name string) uint64 {
	t.Helper()
	v, ok := snap[name]
	if !ok {
		t.Fatalf("snapshot missing %q (have %d metrics)", name, len(snap))
	}
	c, ok := v.(uint64)
	if !ok {
		t.Fatalf("snapshot[%q] is %T, want uint64", name, v)
	}
	return c
}

// TestEngineTelemetryCounters checks that the engine's metric set adds up:
// decision counts match the packets pushed through, every chain step is
// invoked once per decision (selectivity provenance), the batch-size
// histogram saw every batch, and the table counters reflect the 2x-replica
// write amplification of the per-shard double snapshot.
func TestEngineTelemetryCounters(t *testing.T) {
	const (
		shards  = 2
		writes  = 32
		batch   = 128
		batches = 5
	)
	reg := telemetry.NewRegistry()
	e := newTelemetryEngine(t, shards, testPolicySrc, reg, 64)
	fillRandom(t, e, writes, 11)

	pkts := make([]Packet, batch)
	for i := range pkts {
		pkts[i] = Packet{Key: uint64(i) * 0x9E3779B97F4A7C15}
	}
	for i := 0; i < batches; i++ {
		e.DecideBatch(pkts)
	}

	snap := reg.Snapshot()
	decisions := uint64(batch * batches)
	if got := snapCounter(t, snap, "thanos_engine_decisions_total"); got != decisions {
		t.Errorf("decisions_total = %d, want %d", got, decisions)
	}
	// Every decision executes the full chain, so each step's invocation
	// count equals the decision count; candidate counts shrink (or hold)
	// monotonically through the intersect chain only in expectation, but
	// step 0 (the table view) always yields the full table.
	labels := e.shards[0].states[0].interp.StepLabels()
	var prevCand uint64
	for i := range labels {
		name := "thanos_engine_chain_step" + string(rune('0'+i)) + "_invocations_total"
		if got := snapCounter(t, snap, name); got != decisions {
			t.Errorf("%s = %d, want %d", name, got, decisions)
		}
		cand := snapCounter(t, snap, "thanos_engine_chain_step"+string(rune('0'+i))+"_candidates_total")
		if i == 0 {
			if want := decisions * writes; cand != want {
				t.Errorf("step0 candidates = %d, want %d (full table per decision)", cand, want)
			}
			prevCand = cand
		}
		_ = prevCand
	}
	// Each table write lands on both snapshots of every shard.
	if got := snapCounter(t, snap, "thanos_engine_table_adds_total"); got != uint64(writes*2*shards) {
		t.Errorf("table_adds_total = %d, want %d", got, writes*2*shards)
	}
	bh, ok := snap["thanos_engine_batch_size"].(telemetry.HistogramSnapshot)
	if !ok {
		t.Fatalf("batch_size snapshot is %T", snap["thanos_engine_batch_size"])
	}
	if bh.Count != batches {
		t.Errorf("batch_size histogram count = %d, want %d", bh.Count, batches)
	}
	if bh.Sum != decisions {
		t.Errorf("batch_size histogram sum = %d, want %d", bh.Sum, decisions)
	}
	if got := snapCounter(t, snap, "thanos_engine_epoch_swaps_total"); got != uint64(writes*shards) {
		t.Errorf("epoch_swaps_total = %d, want %d (one publish per shard per write)", got, writes*shards)
	}
	if e.Telemetry() != reg {
		t.Error("Telemetry() did not return the configured registry")
	}
}

// TestEngineDecideBatchZeroAllocWithTelemetry is the acceptance criterion
// for the telemetry layer: the fully instrumented batched path — counters,
// histograms, and a tracer sampling EVERY decision — still performs zero
// steady-state heap allocations.
func TestEngineDecideBatchZeroAllocWithTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := newTelemetryEngine(t, 4, testPolicySrc, reg, 1)
	fillRandom(t, e, 64, 17)

	pkts := make([]Packet, 256)
	for i := range pkts {
		pkts[i] = Packet{Key: uint64(i) * 0x9E3779B97F4A7C15, Out: i % 2}
	}
	e.DecideBatch(pkts) // warm up ring scratch and index buffers

	allocs := testing.AllocsPerRun(100, func() {
		e.DecideBatch(pkts)
	})
	if allocs != 0 {
		t.Fatalf("instrumented DecideBatch allocates %.1f times per batch, want 0", allocs)
	}
}

// TestEngineChromeTraceExport drives sampled decisions through the engine
// and checks the merged trace exports as well-formed Chrome trace_event
// JSON and as the flat trace JSON.
func TestEngineChromeTraceExport(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := newTelemetryEngine(t, 2, testPolicySrc, reg, 8)
	fillRandom(t, e, 32, 3)
	pkts := make([]Packet, 64)
	for i := range pkts {
		pkts[i] = Packet{Key: uint64(i)}
	}
	for i := 0; i < 4; i++ {
		e.DecideBatch(pkts)
	}
	traces := e.TraceSnapshot()
	if len(traces) == 0 {
		t.Fatal("no traces sampled")
	}
	for i := 1; i < len(traces); i++ {
		a, b := traces[i-1], traces[i]
		if a.Seq > b.Seq || (a.Seq == b.Seq && a.Shard > b.Shard) {
			t.Fatalf("traces not sorted: %d:(%d,%d) before %d:(%d,%d)",
				i-1, a.Seq, a.Shard, i, b.Seq, b.Shard)
		}
	}

	var buf bytes.Buffer
	if err := telemetry.WriteChromeTrace(&buf, traces); err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Dur  uint64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &chrome); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
	for _, ev := range chrome.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %q has phase %q, want X", ev.Name, ev.Ph)
		}
		if ev.Dur == 0 {
			t.Fatalf("event %q has zero duration", ev.Name)
		}
	}

	buf.Reset()
	if err := telemetry.WriteTraceJSON(&buf, traces); err != nil {
		t.Fatal(err)
	}
	var flat []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &flat); err != nil {
		t.Fatalf("trace JSON decode: %v", err)
	}
	if len(flat) != len(traces) {
		t.Fatalf("trace JSON has %d entries, want %d", len(flat), len(traces))
	}
}

// TestTelemetryOverheadSmoke is the CI overhead gate: enabled with
// THANOS_OVERHEAD_SMOKE=1, it re-verifies the instrumented zero-alloc
// contract and fails if full telemetry (default trace sampling) costs more
// than 5% of batched decision throughput. Benchmarks take the best of
// three runs to shave scheduler noise.
func TestTelemetryOverheadSmoke(t *testing.T) {
	if os.Getenv("THANOS_OVERHEAD_SMOKE") != "1" {
		t.Skip("set THANOS_OVERHEAD_SMOKE=1 to run the overhead gate")
	}
	reg := telemetry.NewRegistry()
	inst := newTelemetryEngine(t, 2, testPolicySrc, reg, 0) // default 1-in-1024 trace sampling
	fillRandom(t, inst, 64, 17)
	plain := newTestEngine(t, 2, testPolicySrc)
	fillRandom(t, plain, 64, 17)

	pkts := make([]Packet, 512)
	for i := range pkts {
		pkts[i] = Packet{Key: uint64(i) * 0x9E3779B97F4A7C15}
	}
	inst.DecideBatch(pkts)
	plain.DecideBatch(pkts)

	if allocs := testing.AllocsPerRun(50, func() { inst.DecideBatch(pkts) }); allocs != 0 {
		t.Fatalf("instrumented DecideBatch allocates %.1f times per batch, want 0", allocs)
	}

	// Interleave the instrumented and plain measurements so a slow-drifting
	// co-tenant (cache or memory-bandwidth contention) hits both columns
	// alike instead of skewing whichever engine it happened to overlap;
	// minima then compare like against like.
	measure := func(e *Engine) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				e.DecideBatch(pkts)
			}
		})
		return float64(r.NsPerOp())
	}
	// Alternating which engine goes first each round keeps a ramping or
	// decaying contention episode from always landing on the same column.
	instNs, plainNs := 0.0, 0.0
	for i := 0; i < 4; i++ {
		a, b := inst, plain
		if i%2 == 1 {
			a, b = plain, inst
		}
		na, nb := measure(a), measure(b)
		if a == plain {
			na, nb = nb, na
		}
		if instNs == 0 || na < instNs {
			instNs = na
		}
		if plainNs == 0 || nb < plainNs {
			plainNs = nb
		}
	}
	overhead := instNs/plainNs - 1
	t.Logf("plain %.0f ns/batch, instrumented %.0f ns/batch, overhead %.2f%%", plainNs, instNs, overhead*100)
	if overhead > 0.05 {
		t.Fatalf("telemetry overhead %.2f%% exceeds the 5%% budget", overhead*100)
	}
}
