// Package engine implements a concurrent, sharded decision engine over the
// Thanos filter module — the software analogue of a multi-pipelined data
// plane (§5.1.5 of the paper). Where internal/core and policy.Module model a
// single pipeline making one decision at a time, the engine runs one
// goroutine per pipeline replica ("shard"), each owning its own SMBM replica
// and flattened policy interpreter with fixed scratch vectors, so decisions
// proceed in parallel at up to GOMAXPROCS-way concurrency without sharing a
// single hot data structure.
//
// # Reads never stall on writes
//
// The paper's SMBM hardware performs fully pipelined 2-cycle writes that
// never block reads: the visible state always corresponds to a completed
// operation (§5.1.4). The engine models that with epoch-based snapshot
// publication. Each shard holds two complete replicas of the table+interp
// pair. Readers always execute against the shard's active snapshot; a write
// mutates the shadow replica, atomically swaps it in as the new active
// snapshot, waits for the (single) reader goroutine to drain the old epoch,
// and then replays the same operation on the retired snapshot so both stay
// in sync. Decisions therefore always observe an atomic, fully-written table
// — never a half-applied add — and the decision path contains no locks.
//
// # Batched decisions
//
// DecideBatch is the data-plane entry point: the caller hands a batch of
// packets, the engine steers each packet to a shard by its Key (a flow hash;
// one flow always lands on the same pipeline, exactly how a multi-pipeline
// switch partitions traffic), enqueues per-shard work descriptors on SPSC
// ring buffers, and blocks until every decision is written back into the
// batch in place. The steady-state path — partitioning, ring hand-off,
// policy execution, fallback resolution — performs zero heap allocations.
//
// # Graceful degradation
//
// A replica that diverges from the authoritative table (memory corruption, a
// failed broadcast write) is not a crash: the shard moves through a health
// state machine (healthy → quarantined → resyncing → healthy). Quarantined
// shards are skipped by the batch partitioner — their traffic fails over to
// healthy shards — while a background loop rebuilds both snapshots from an
// epoch-consistent view of the authoritative table, with capped exponential
// backoff between failed attempts. Likewise, using the engine after Close
// degrades (decisions come back OK=false, writes return ErrClosed) instead
// of panicking. See health.go.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/policy"
	"repro/internal/smbm"
	"repro/internal/telemetry"
)

// ErrClosed is returned by control-plane writes issued after Close.
var ErrClosed = errors.New("engine: closed")

// DefaultChunkSize is the number of packets per ring-buffer work descriptor:
// large enough to amortize the hand-off, small enough that a batch spreads
// across shards promptly.
const DefaultChunkSize = 256

// ringSlots is the capacity of each shard's SPSC work ring. With producers
// serialized and each batch awaited before the next, a small ring suffices;
// extra slots let a producer stream chunks ahead of the consumer.
const ringSlots = 8

// Packet is one decision request flowing through DecideBatch. The engine
// fills ID and OK in place.
type Packet struct {
	// Key steers the packet to a shard (shard = Key mod Shards). Callers
	// typically use a flow hash so a flow's packets share a pipeline.
	Key uint64
	// Out is the policy output index to resolve (0 for single-output
	// policies); fallback chains are followed as usual (§4.2.3).
	Out int
	// ID is the selected resource id, valid when OK is true; -1 otherwise.
	ID int
	// OK reports whether any resource was selected (false when even the
	// fallback table came up empty).
	OK bool
}

// Config configures New.
type Config struct {
	// Shards is the number of pipeline replicas (decision goroutines);
	// 0 or negative selects GOMAXPROCS.
	Shards int
	// Capacity is N, the resource-slot count of every replica table.
	Capacity int
	// Schema names the metric dimensions.
	Schema policy.Schema
	// Policy is the filter policy every shard executes.
	Policy *policy.Policy
	// ChunkSize is the number of packets per work descriptor;
	// 0 selects DefaultChunkSize.
	ChunkSize int
	// Telemetry, when non-nil, registers the engine's metrics — per-shard
	// decision counts, chain selectivity, table op counts, batch-size and
	// ring-occupancy histograms, epoch swap/staleness counters — under this
	// registry and enables a per-shard sampled decision tracer. All handles
	// are created here, at construction; the decision path stays free of
	// allocation and locking whether or not telemetry is attached.
	Telemetry *telemetry.Registry
	// TraceEvery samples one decision in every TraceEvery per shard;
	// 0 selects DefaultTraceEvery. Ignored without Telemetry.
	TraceEvery int
	// TraceCapacity is each shard's trace ring size; 0 selects
	// DefaultTraceCapacity. Ignored without Telemetry.
	TraceCapacity int
	// ResyncBase is the initial backoff between failed resync attempts of a
	// quarantined shard; 0 selects DefaultResyncBase.
	ResyncBase time.Duration
	// ResyncMax caps the exponential resync backoff; 0 selects
	// DefaultResyncMax.
	ResyncMax time.Duration
	// Flight, when non-nil, receives the engine's state transitions
	// (quarantine, resync completion, policy swap) for the always-on flight
	// recorder. Records are lock-free and allocation-free; nil disables
	// recording.
	Flight *telemetry.SpanRing
	// OnQuarantine, when non-nil, is called once per shard quarantine with
	// the shard index and the divergence that caused it. It runs on the
	// background resync goroutine, never under the engine's locks, so it may
	// block or do I/O (e.g. dump the flight recorder).
	OnQuarantine func(shard int, cause error)
}

// DefaultResyncBase is the default initial resync retry backoff.
const DefaultResyncBase = time.Millisecond

// DefaultResyncMax is the default cap on the exponential resync backoff.
const DefaultResyncMax = 100 * time.Millisecond

// DefaultTraceEvery is the default per-shard decision sampling period of
// the provenance tracer.
const DefaultTraceEvery = 1024

// DefaultTraceCapacity is the default per-shard trace ring size.
const DefaultTraceCapacity = 256

// snapshot is one complete replica: an SMBM plus an interpreter bound to it.
// A snapshot is only ever executed by its shard's reader goroutine and only
// ever mutated by a writer that has proven (via the epoch protocol) that the
// reader is not using it.
//
// Both halves are arena-packed: the SMBM stores its dimensions in padded
// columnar arenas and the interpreter carves every step buffer from one
// cache-line-aligned bitvec batch, so a shard's decision working set is a
// handful of contiguous allocations rather than per-vector heap objects.
type snapshot struct {
	table  *smbm.SMBM
	interp *policy.Interp
	// pol is the policy the interpreter was built from. It rides inside the
	// snapshot so a policy hot-swap (SwapPolicy) publishes the new program
	// and its fallback table atomically with the epoch: a reader resolving
	// fallbacks always uses the policy its pinned interpreter was built for.
	pol *policy.Policy
}

// work is one ring-buffer descriptor: decide packets pkts[i] for i in idx,
// then signal wg.
type work struct {
	pkts []Packet
	idx  []int32
	wg   *sync.WaitGroup
}

// shard is one pipeline replica: a reader goroutine, its double-buffered
// snapshots, and the SPSC ring feeding it work.
type shard struct {
	states [2]*snapshot
	active atomic.Pointer[snapshot] // the snapshot new batches execute against
	inUse  atomic.Pointer[snapshot] // the snapshot the reader is executing now (nil = idle)

	ring []work
	head atomic.Uint32 // consumer cursor
	tail atomic.Uint32 // producer cursor
	wake chan struct{} // capacity-1 doorbell, producer -> consumer
	quit chan struct{}

	// pidx is the producer-side packet-index scratch for the batch being
	// partitioned; guarded by Engine.pmu and reused across batches so the
	// steady-state producer path does not allocate.
	pidx []int32

	// health is the shard's position in the degradation state machine
	// (Healthy/Quarantined/Resyncing). Transitions happen under Engine.wmu;
	// the atomic lets the partitioner and scrapers read it lock-free.
	health atomic.Int32
	// lastErr records the divergence that quarantined the shard; guarded by
	// Engine.wmu.
	lastErr error

	// Telemetry handles, nil unless Config.Telemetry was set. decCtr and
	// emptyCtr are this shard's padded slots of the engine-wide sharded
	// counters; tracer is this shard's provenance tracer. Only the shard's
	// reader goroutine touches them on the hot path. chainTel/tableTel are
	// kept so resync can re-attach the shard's stats to rebuilt snapshots.
	decCtr   *telemetry.Counter
	emptyCtr *telemetry.Counter
	tracer   *telemetry.Tracer
	chainTel *telemetry.ChainStats
	tableTel *telemetry.TableStats
}

// Engine is a concurrent sharded decision engine. Decisions (DecideBatch,
// Decide) and writes (Add, Delete, Update, Upsert) may be issued
// concurrently from any number of goroutines.
type Engine struct {
	shards []*shard
	pol    *policy.Policy
	schema policy.Schema
	chunk  int

	// auth is the authoritative control-plane table: every accepted write
	// lands here first, and quarantined shards rebuild from it. Guarded by
	// wmu; never read by the decision path.
	auth *smbm.SMBM

	// counts is the per-shard packet tally for the batch being partitioned;
	// guarded by pmu, sized once in New, reused across batches.
	counts []int32

	// steer maps a packet's home shard (Key mod Shards) to the shard that
	// actually serves it: the identity while every shard is healthy, a
	// healthy substitute for quarantined homes (failover), and unused while
	// live==0. Guarded by pmu; rebuilt on every health transition.
	steer []int32
	// live is the number of healthy shards; guarded by pmu.
	live int

	// pmu serializes producers, keeping each ring single-producer and the
	// producer scratch (pidx, counts, batch WaitGroup, one) reusable.
	pmu    sync.Mutex
	wg     sync.WaitGroup // completion of the batch in flight; reused
	one    [1]Packet      // scratch for Decide
	rrKey  uint64         // round-robin steering key for Decide
	closed bool

	// wmu serializes writers, so the two snapshots of every shard advance
	// through the same operation sequence. Lock order: wmu before pmu.
	wmu sync.Mutex

	running  sync.WaitGroup // shard goroutines, for Close
	bg       sync.WaitGroup // background resync goroutines, for Close
	closedCh chan struct{}  // closed by Close; bails writers and resync loops

	// flight receives state-transition events (nil-safe); onQuar is the
	// user's quarantine callback, invoked from resyncLoop outside all locks.
	flight *telemetry.SpanRing
	onQuar func(shard int, cause error)

	// resync retry schedule (capped exponential backoff).
	resyncBase time.Duration
	resyncMax  time.Duration
	// resyncFailHook, when set (tests/fault injection), is consulted at the
	// top of every resync attempt; a non-nil error fails that attempt.
	// Read under wmu.
	resyncFailHook func(shard, attempt int) error

	// Telemetry, nil unless Config.Telemetry was set. batchHist/ringHist
	// are observed on the (pmu-serialized) producer path; swaps/waitSpins
	// on the (wmu-serialized) write path.
	reg       *telemetry.Registry
	batchHist *telemetry.Histogram // DecideBatch sizes
	ringHist  *telemetry.Histogram // ring occupancy at each chunk push
	swaps     *telemetry.Counter   // active-snapshot publishes (one per shard per write)
	waitSpins *telemetry.Counter   // writer spins on a reader-pinned retired snapshot (staleness)
	polSwaps  *telemetry.Counter   // policy hot-swaps published (SwapPolicy successes)

	// Degradation telemetry, nil-safe like every other handle.
	quarCtr     *telemetry.Counter // shards quarantined after divergence
	resyncCtr   *telemetry.Counter // resyncs completed
	retryCtr    *telemetry.Counter // failed resync attempts (will back off + retry)
	failoverCtr *telemetry.Counter // decisions diverted to a non-home shard
	failedCtr   *telemetry.Counter // decisions failed: engine closed or no healthy shard
	quarGauge   *telemetry.Gauge   // shards currently quarantined or resyncing
}

// New builds the engine: per shard, two complete table+interpreter replicas
// (the double buffer) and a decision goroutine. All replicas start empty and
// identical; every interpreter draws the same deterministic seed assignment,
// so shards model identically-configured pipeline replicas.
func New(cfg Config) (*Engine, error) {
	n := cfg.Shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("engine: capacity must be positive")
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("engine: nil policy")
	}
	chunk := cfg.ChunkSize
	if chunk <= 0 {
		chunk = DefaultChunkSize
	}
	e := &Engine{
		pol:        cfg.Policy,
		schema:     cfg.Schema,
		chunk:      chunk,
		auth:       smbm.New(cfg.Capacity, len(cfg.Schema.Attrs)),
		counts:     make([]int32, n),
		steer:      make([]int32, n),
		live:       n,
		closedCh:   make(chan struct{}),
		flight:     cfg.Flight,
		onQuar:     cfg.OnQuarantine,
		resyncBase: cfg.ResyncBase,
		resyncMax:  cfg.ResyncMax,
	}
	if e.resyncBase <= 0 {
		e.resyncBase = DefaultResyncBase
	}
	if e.resyncMax <= 0 {
		e.resyncMax = DefaultResyncMax
	}
	for i := range e.steer {
		e.steer[i] = int32(i)
	}
	for i := 0; i < n; i++ {
		s := &shard{
			ring: make([]work, ringSlots),
			wake: make(chan struct{}, 1),
			quit: make(chan struct{}),
		}
		for j := range s.states {
			t := smbm.New(cfg.Capacity, len(cfg.Schema.Attrs))
			it, err := policy.NewInterp(t, cfg.Schema, cfg.Policy)
			if err != nil {
				return nil, err
			}
			s.states[j] = &snapshot{table: t, interp: it, pol: cfg.Policy}
		}
		s.active.Store(s.states[0])
		e.shards = append(e.shards, s)
	}
	if cfg.Telemetry != nil {
		e.setupTelemetry(cfg, n)
	}
	for i, s := range e.shards {
		e.running.Add(1)
		go func(i int, s *shard) {
			// Label the shard goroutine so CPU profiles break down by
			// pipeline replica.
			pprof.Do(context.Background(), pprof.Labels("thanos_shard", strconv.Itoa(i)), func(context.Context) {
				s.run(&e.running)
			})
		}(i, s)
	}
	return e, nil
}

// setupTelemetry registers the engine's metric set under cfg.Telemetry and
// hands each shard its padded counter slots, chain/table stats and tracer.
// Runs once, before the shard goroutines start, so no synchronization with
// readers is needed.
func (e *Engine) setupTelemetry(cfg Config, n int) {
	reg := cfg.Telemetry
	e.reg = reg
	labels := e.shards[0].states[0].interp.StepLabels()
	chains := telemetry.NewChainStats(reg, "thanos_engine_chain", labels, n)
	tables := telemetry.NewTableStats(reg, "thanos_engine_table", n)
	dec := reg.NewShardedCounter("thanos_engine_decisions_total", "decisions executed across all shards", n)
	empty := reg.NewShardedCounter("thanos_engine_empty_decisions_total", "decisions whose final candidate set was empty", n)
	e.batchHist = reg.NewHistogram("thanos_engine_batch_size", "DecideBatch request sizes in packets")
	e.ringHist = reg.NewHistogram("thanos_engine_ring_occupancy", "SPSC ring depth observed at each chunk enqueue")
	e.swaps = reg.NewCounter("thanos_engine_epoch_swaps_total", "active-snapshot publishes (one per shard per table write)")
	e.waitSpins = reg.NewCounter("thanos_engine_epoch_wait_spins_total", "writer spins waiting for a reader to drain a retired snapshot")
	e.polSwaps = reg.NewCounter("thanos_engine_policy_swaps_total", "policy hot-swaps published through the epoch-snapshot mechanism")
	e.quarCtr = reg.NewCounter("thanos_engine_shards_quarantined_total", "shards quarantined after replica divergence")
	e.resyncCtr = reg.NewCounter("thanos_engine_resyncs_completed_total", "quarantined shards rebuilt from the authoritative table and returned to service")
	e.retryCtr = reg.NewCounter("thanos_engine_resync_retries_total", "failed resync attempts, retried with capped exponential backoff")
	e.failoverCtr = reg.NewCounter("thanos_engine_failover_decisions_total", "decisions diverted from a quarantined home shard to a healthy one")
	e.failedCtr = reg.NewCounter("thanos_engine_failed_decisions_total", "decisions failed because the engine was closed or no shard was healthy")
	e.quarGauge = reg.NewGauge("thanos_engine_quarantined_shards", "shards currently quarantined or resyncing")
	reg.NewGaugeFunc("thanos_engine_shards", "pipeline replicas", func() int64 { return int64(n) })
	// thanos_engine_table_size (the TableStats gauge above) tracks the
	// replica size as the readers apply writes; this one asks the
	// authoritative replica directly at scrape time.
	reg.NewGaugeFunc("thanos_engine_resources", "resources in the authoritative replica at scrape time", func() int64 { return int64(e.Size()) })
	every := cfg.TraceEvery
	if every <= 0 {
		every = DefaultTraceEvery
	}
	capacity := cfg.TraceCapacity
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	for i, s := range e.shards {
		s.decCtr = dec.Shard(i)
		s.emptyCtr = empty.Shard(i)
		s.tracer = telemetry.NewTracer(every, capacity, i)
		s.chainTel = chains[i]
		s.tableTel = tables[i]
		// Both snapshots of a shard run on the same reader goroutine (never
		// concurrently), so they can share the shard's handles.
		for _, st := range s.states {
			st.interp.AttachTelemetry(chains[i])
			st.table.AttachTelemetry(tables[i])
		}
	}
}

// Telemetry returns the registry the engine was configured with, or nil.
func (e *Engine) Telemetry() *telemetry.Registry { return e.reg }

// TraceSnapshot returns the sampled decision traces of every shard, merged
// in ascending (Seq, Shard) order. It briefly takes the producer lock:
// since every batch completes before DecideBatch releases that lock,
// holding it guarantees no shard is mid-decision, which is the tracers'
// snapshot precondition.
func (e *Engine) TraceSnapshot() []telemetry.Trace {
	e.pmu.Lock()
	defer e.pmu.Unlock()
	var out []telemetry.Trace
	for _, s := range e.shards {
		out = append(out, s.tracer.Snapshot()...)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Seq != out[b].Seq {
			return out[a].Seq < out[b].Seq
		}
		return out[a].Shard < out[b].Shard
	})
	return out
}

// Shards returns the number of pipeline replicas.
func (e *Engine) Shards() int { return len(e.shards) }

// Policy returns the policy every shard currently executes. With policy
// hot-swaps in flight the result is the most recently published policy.
func (e *Engine) Policy() *policy.Policy {
	e.pmu.Lock()
	defer e.pmu.Unlock()
	return e.pol
}

// Schema returns the metric-dimension schema the engine was built with.
// The schema is immutable for the engine's lifetime: hot-swaps replace the
// policy, never the table layout.
func (e *Engine) Schema() policy.Schema { return e.schema }

// Capacity returns N, the resource-slot count of the replica tables. Like
// the schema it is fixed at construction — reading a live snapshot here
// would race the epoch writer for no benefit.
func (e *Engine) Capacity() int { return e.auth.Capacity() }

// Close stops every shard goroutine and any background resyncs, and waits
// for them to exit. Pending batches are drained first; Close is idempotent.
// Using the engine after Close degrades instead of crashing: DecideBatch and
// Decide fill every packet with ID=-1/OK=false (a batch racing Close may
// still be served by the draining shards), and control-plane writes return
// ErrClosed.
func (e *Engine) Close() {
	e.pmu.Lock()
	if e.closed {
		e.pmu.Unlock()
		return
	}
	e.closed = true
	e.pmu.Unlock()
	close(e.closedCh)
	for _, s := range e.shards {
		close(s.quit)
	}
	e.running.Wait()
	e.bg.Wait()
}

// DecideBatch runs one policy decision per packet, in parallel across the
// engine's shards, writing each result into the packet in place. It returns
// when every packet in the batch has been decided. Safe for concurrent use;
// concurrent batches are serialized on the producer side while their
// decisions still fan out across all shards.
//
// The steady-state path performs no heap allocations.
//
//thanos:hotpath
func (e *Engine) DecideBatch(pkts []Packet) {
	if len(pkts) == 0 {
		return
	}
	e.pmu.Lock()
	defer e.pmu.Unlock()
	e.decideBatchLocked(pkts)
}

// Decide runs a single decision for policy output 0, steering it to shards
// round-robin. It is the convenience path simulators use; batch callers get
// far better throughput from DecideBatch.
//
//thanos:hotpath
func (e *Engine) Decide() (id int, ok bool) {
	e.pmu.Lock()
	defer e.pmu.Unlock()
	e.one[0] = Packet{Key: e.rrKey}
	e.rrKey++
	e.decideBatchLocked(e.one[:])
	return e.one[0].ID, e.one[0].OK
}

func (e *Engine) decideBatchLocked(pkts []Packet) {
	if e.closed || e.live == 0 {
		// Degraded: the engine is closed, or every shard is quarantined.
		// Fail the batch in place — callers observe OK=false — instead of
		// panicking out of a benign shutdown race or a total fault.
		e.failBatch(pkts)
		return
	}
	// A packet naming an output the current policy does not have fails in
	// place (ID=-1, OK=false) instead of panicking: with policy hot-swaps a
	// caller's view of the output count is inherently racy, so an
	// out-of-range index is a degradation, not a programming error. Shards
	// re-check against their own pinned snapshot's policy in process().
	nOut := len(e.pol.Outputs)
	var invalid uint64
	// Partition the batch across shards by steering key: a counting pass
	// sizes each shard's index list exactly, so the fill pass below extends
	// within capacity and the steady state never grows a slice. steer
	// redirects packets homed on quarantined shards to healthy ones.
	ns := uint64(len(e.shards))
	for i := range e.counts {
		e.counts[i] = 0
	}
	var diverted uint64
	for i := range pkts {
		if pkts[i].Out < 0 || pkts[i].Out >= nOut {
			pkts[i].ID = -1
			pkts[i].OK = false
			invalid++
			continue
		}
		home := pkts[i].Key % ns
		tgt := e.steer[home]
		if uint64(tgt) != home {
			diverted++
		}
		e.counts[tgt]++
	}
	if invalid != 0 {
		e.failedCtr.Add(invalid)
		if invalid == uint64(len(pkts)) {
			return
		}
	}
	if diverted != 0 {
		e.failoverCtr.Add(diverted)
	}
	for si, s := range e.shards {
		s.reservePidx(int(e.counts[si]))
	}
	for i := range pkts {
		if pkts[i].Out < 0 || pkts[i].Out >= nOut {
			continue
		}
		s := e.shards[e.steer[pkts[i].Key%ns]]
		n := len(s.pidx)
		s.pidx = s.pidx[:n+1]
		s.pidx[n] = int32(i)
	}
	chunks := 0
	for _, s := range e.shards {
		chunks += (len(s.pidx) + e.chunk - 1) / e.chunk
	}
	e.batchHist.Observe(uint64(len(pkts)))
	e.wg.Add(chunks)
	for _, s := range e.shards {
		for off := 0; off < len(s.pidx); off += e.chunk {
			end := off + e.chunk
			if end > len(s.pidx) {
				end = len(s.pidx)
			}
			// Ring occupancy sampled producer-side at every enqueue: a
			// persistently deep ring means the consumer is the bottleneck.
			e.ringHist.Observe(uint64(s.tail.Load() - s.head.Load()))
			s.push(work{pkts: pkts, idx: s.pidx[off:end], wg: &e.wg})
		}
	}
	e.wg.Wait()
}

// failBatch marks every packet undecided (ID=-1, OK=false) and counts the
// failures. Allocation-free: it runs on the hot path's degraded branch.
func (e *Engine) failBatch(pkts []Packet) {
	for i := range pkts {
		pkts[i].ID = -1
		pkts[i].OK = false
	}
	e.failedCtr.Add(uint64(len(pkts)))
}

// reservePidx empties the shard's packet-index scratch and ensures capacity
// for n entries.
//
//thanos:coldpath amortized: grows only when a batch steers more packets to this shard than any batch before it; steady state is a re-slice
func (s *shard) reservePidx(n int) {
	if cap(s.pidx) < n {
		s.pidx = make([]int32, 0, n)
	}
	s.pidx = s.pidx[:0]
}

// push enqueues one work descriptor on the shard's SPSC ring, spinning when
// the ring is full (the consumer is draining it concurrently), and rings the
// doorbell.
func (s *shard) push(w work) {
	for s.tail.Load()-s.head.Load() == uint32(len(s.ring)) {
		runtime.Gosched()
	}
	s.ring[s.tail.Load()%uint32(len(s.ring))] = w
	s.tail.Add(1)
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// pop dequeues one work descriptor, or reports the ring empty.
func (s *shard) pop() (work, bool) {
	h := s.head.Load()
	if h == s.tail.Load() {
		return work{}, false
	}
	slot := h % uint32(len(s.ring))
	w := s.ring[slot]
	s.ring[slot] = work{} // release references
	s.head.Add(1)
	return w, true
}

// run is the shard's reader goroutine: drain the ring, park on the doorbell.
func (s *shard) run(done *sync.WaitGroup) {
	defer done.Done()
	for {
		for {
			w, ok := s.pop()
			if !ok {
				break
			}
			s.process(w)
		}
		select {
		case <-s.wake:
		case <-s.quit:
			// Drain work enqueued before shutdown so no batch waits forever.
			for {
				w, ok := s.pop()
				if !ok {
					return
				}
				s.process(w)
			}
		}
	}
}

// process executes one work descriptor against the shard's active snapshot.
// The inUse pointer is the shard's half of the epoch protocol: publish the
// snapshot being read, re-check that it is still active (a writer may have
// swapped in between), execute, clear. Writers spin on inUse before mutating
// a retired snapshot, so execution never observes a table mid-write.
//
//thanos:hotpath
func (s *shard) process(w work) {
	var st *snapshot
	for {
		st = s.active.Load()
		s.inUse.Store(st)
		if s.active.Load() == st {
			break
		}
		s.inUse.Store(nil) // writer swapped underneath us; retry on the new epoch
	}
	var dec, empty uint64
	nOut := len(st.pol.Outputs)
	for _, i := range w.idx {
		p := &w.pkts[i]
		// The partitioner validated Out against the policy it saw, but a
		// hot-swap may have published a snapshot with fewer outputs between
		// partitioning and execution. Degrade such packets instead of letting
		// Resolve panic: each decision is consistent with the snapshot it ran
		// against.
		if p.Out >= nOut {
			p.ID = -1
			p.OK = false
			dec++
			empty++
			continue
		}
		tr := s.tracer.Sample()
		outs := st.interp.ExecTraced(tr)
		res := policy.Resolve(st.pol, outs, p.Out)
		p.ID = res.FirstSet()
		p.OK = p.ID >= 0
		dec++
		if !p.OK {
			empty++
		}
		tr.Finish(p.Out, p.ID, p.OK)
	}
	// One telemetry publish per chunk, not per decision. The snapshot (and
	// so its table version) stays pinned until inUse clears below, which is
	// what FlushStats's same-version contract requires.
	s.decCtr.Add(dec)
	if empty != 0 {
		s.emptyCtr.Add(empty)
	}
	st.interp.FlushStats(dec)
	s.inUse.Store(nil)
	w.wg.Done()
}

// Add inserts a resource into every replica. See apply for the propagation
// protocol.
func (e *Engine) Add(id int, vals []int64) error {
	return e.apply(func(t *smbm.SMBM) error { return t.Add(id, vals) })
}

// Delete removes a resource from every replica.
func (e *Engine) Delete(id int) error {
	return e.apply(func(t *smbm.SMBM) error { return t.Delete(id) })
}

// Update replaces a resource's metrics in every replica.
func (e *Engine) Update(id int, vals []int64) error {
	return e.apply(func(t *smbm.SMBM) error { return t.Update(id, vals) })
}

// Upsert adds or refreshes a resource in every replica — the probe-
// processing write path (§3).
func (e *Engine) Upsert(id int, vals []int64) error {
	return e.apply(func(t *smbm.SMBM) error { return t.Upsert(id, vals) })
}

// Remove is Delete under the name the simulator backends use.
func (e *Engine) Remove(id int) error { return e.Delete(id) }

// apply propagates one table operation to the authoritative table and then
// to both snapshots of every healthy shard. The operation is validated
// against the authoritative table first; a validation failure (duplicate id,
// missing id, full table) leaves every replica untouched.
//
// A failure on a shard replica after the authority accepted the write means
// that replica has diverged. That used to panic; now the shard is
// quarantined — its traffic fails over to healthy shards while a background
// resync rebuilds it from the authority — and apply reports the first
// divergence as an ErrReplicaDivergence-wrapped error. Healthy shards still
// receive the write, so the serving set stays consistent.
func (e *Engine) apply(op func(*smbm.SMBM) error) error {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	select {
	case <-e.closedCh:
		return ErrClosed
	default:
	}
	if err := op(e.auth); err != nil {
		return err
	}
	var firstDiv error
	for si, s := range e.shards {
		if ShardHealth(s.health.Load()) != Healthy {
			continue // will rebuild from e.auth on resync
		}
		if err := e.applyShard(s, op); err != nil {
			e.quarantineLocked(si, err)
			if firstDiv == nil {
				firstDiv = fmt.Errorf("engine: shard %d quarantined: %w: %w",
					si, smbm.ErrReplicaDivergence, err)
			}
		}
	}
	return firstDiv
}

// applyShard propagates one already-validated operation to both snapshots of
// a shard without ever stalling readers: mutate the shadow snapshot,
// atomically publish it as the new active epoch, wait for the reader to
// finish any batch pinned to the old epoch, then replay the operation on the
// retired snapshot. This mirrors the paper's pipelined 2-cycle SMBM writes
// (§5.1.4): reads issued at any moment see a complete, consistent table.
// Caller holds wmu.
func (e *Engine) applyShard(s *shard, op func(*smbm.SMBM) error) error {
	act := s.active.Load()
	shadow := s.other(act)
	if err := op(shadow.table); err != nil {
		// The shadow missed a write the authority accepted: the shard is
		// behind the authoritative sequence, though its two snapshots still
		// agree with each other.
		return err
	}
	s.active.Store(shadow)
	e.swaps.Inc()
	for s.inUse.Load() == act {
		e.waitSpins.Inc() // staleness: the retired epoch is still pinned
		runtime.Gosched() // reader still draining the old epoch
	}
	if err := op(act.table); err != nil {
		// The retired snapshot rejected a replay its twin accepted: the two
		// snapshots now disagree. Quarantine heals both from the authority.
		return err
	}
	return nil
}

// other returns the snapshot that is not st.
func (s *shard) other(st *snapshot) *snapshot {
	if s.states[0] == st {
		return s.states[1]
	}
	return s.states[0]
}

// Metrics returns a copy of the metric values for id from the authoritative
// table, or ok=false if absent. Control-plane read.
func (e *Engine) Metrics(id int) ([]int64, bool) {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	return e.auth.Metrics(id)
}

// Size returns the number of resources currently stored.
func (e *Engine) Size() int {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	return e.auth.Size()
}

// CheckSync verifies the engine-wide InSync invariant: both replica tables
// of every healthy shard hold contents identical to the authoritative table
// and satisfy every SMBM structural invariant. Quarantined and resyncing
// shards are excluded — they are known-diverged and out of the serving set.
// Intended for tests; it takes the writer lock, so in-flight decisions are
// unaffected but writes are briefly excluded.
func (e *Engine) CheckSync() error {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	base := e.auth
	if err := base.CheckInvariants(); err != nil {
		return fmt.Errorf("authoritative table: %w", err)
	}
	ids := base.Members().IDs()
	for si, s := range e.shards {
		if ShardHealth(s.health.Load()) != Healthy {
			continue
		}
		for sti, st := range s.states {
			t := st.table
			if err := t.CheckInvariants(); err != nil {
				return fmt.Errorf("shard %d state %d: %w", si, sti, err)
			}
			if t.Size() != base.Size() {
				return fmt.Errorf("shard %d state %d: size %d, want %d", si, sti, t.Size(), base.Size())
			}
			for _, id := range ids {
				want, _ := base.Metrics(id)
				got, ok := t.Metrics(id)
				if !ok {
					return fmt.Errorf("shard %d state %d: id %d missing", si, sti, id)
				}
				for j := range want {
					if got[j] != want[j] {
						return fmt.Errorf("shard %d state %d: id %d metric %d = %d, want %d",
							si, sti, id, j, got[j], want[j])
					}
				}
			}
		}
	}
	return nil
}
