package engine

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/smbm"
)

// TestSwapPolicyQuarantineStress overlaps the three control-plane mutators
// with the data plane: policy hot-swaps and table writes race with
// DecideBatch while injected replica corruption (CorruptReplica +
// VerifyReplicas) cycles shards through quarantine and resync. All inputs
// are seeded, so a failure replays with the same corruption and write
// schedule. The table is arranged so min and max are pinned to ids 1 and 2
// regardless of which snapshot, policy, or serving set a packet lands on:
// every decision must be one of those two ids, with at least three shards
// healthy at all times (the injector corrupts one shard only after the
// previous one has healed).
func TestSwapPolicyQuarantineStress(t *testing.T) {
	e := newTestEngine(t, 4, minPolicySrc)
	// id 1 is always min (cpu 100), id 2 always max (cpu 900); ids 3..10 sit
	// strictly between, so corrupting them away from a replica never changes
	// that replica's answer — stale decisions stay indistinguishable from
	// fresh ones, which is exactly why VerifyReplicas has to catch them.
	for id, cpu := range []int64{500, 100, 900} {
		if err := e.Add(id, []int64{cpu, 0, 0}); err != nil {
			t.Fatal(err)
		}
	}
	for id := 3; id <= 10; id++ {
		if err := e.Add(id, []int64{700, 0, 0}); err != nil {
			t.Fatal(err)
		}
	}

	minPol := policy.MustParse(minPolicySrc)
	maxPol := policy.MustParse(maxPolicySrc)
	var stop atomic.Bool
	var quarantines atomic.Int32
	var wg sync.WaitGroup

	// Deciders: hammer the hot path and assert every answer is one of the
	// two pinned ids, through swaps, writes, failover, and resync.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pkts := make([]Packet, 64)
			for !stop.Load() {
				for i := range pkts {
					pkts[i] = Packet{Key: uint64(g*64 + i)}
				}
				e.DecideBatch(pkts)
				for i := range pkts {
					if !pkts[i].OK || (pkts[i].ID != 1 && pkts[i].ID != 2) {
						t.Errorf("stress decision: (%d,%v)", pkts[i].ID, pkts[i].OK)
						stop.Store(true)
						return
					}
				}
			}
		}(g)
	}

	// Injector: corrupt one replica, then audit to force the quarantine.
	// It waits for full health before each injection so at most one shard is
	// ever out of the serving set and the deciders always have quorum.
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := rand.New(rand.NewSource(7))
		for n := 0; n < 24 && !stop.Load(); n++ {
			for e.HealthyShards() < 4 {
				if stop.Load() {
					return
				}
				time.Sleep(200 * time.Microsecond)
			}
			if err := e.CorruptReplica(r.Intn(4), 3+r.Intn(8)); err != nil {
				continue // shard mid-transition; retry next round
			}
			quarantines.Add(int32(e.VerifyReplicas()))
		}
	}()

	// Swapper + writer (this goroutine): flip the policy and churn scratch
	// ids whose cpu (600) also sits between the pinned min and max. Keep
	// going until the injector has produced a few real quarantine cycles,
	// bounded by a deadline so a wedged resync fails instead of hanging.
	r := rand.New(rand.NewSource(3))
	deadline := time.Now().Add(20 * time.Second)
	for i := 0; (i < 300 || quarantines.Load() < 6) && !stop.Load(); i++ {
		if time.Now().After(deadline) {
			break
		}
		pol := minPol
		if i%2 == 0 {
			pol = maxPol
		}
		if err := e.SwapPolicy(pol); err != nil {
			t.Error(err)
			break
		}
		id := 40 + r.Intn(10)
		if err := e.Add(id, []int64{600, 0, 0}); err != nil && !errors.Is(err, smbm.ErrReplicaDivergence) {
			t.Error(err)
			break
		}
		if err := e.Delete(id); err != nil && !errors.Is(err, smbm.ErrReplicaDivergence) {
			t.Error(err)
			break
		}
	}
	stop.Store(true)
	wg.Wait()

	if quarantines.Load() == 0 {
		t.Fatal("injector never quarantined a shard; the stress window collapsed")
	}
	t.Logf("quarantine cycles survived: %d", quarantines.Load())
	for si := 0; si < 4; si++ {
		waitHealth(t, e, si, Healthy)
	}
	if err := e.CheckSync(); err != nil {
		t.Fatal(err)
	}
	if got := e.HealthyShards(); got != 4 {
		t.Fatalf("HealthyShards() = %d after stress, want 4", got)
	}
}
