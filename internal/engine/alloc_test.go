package engine

import (
	"testing"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/telemetry"
)

// This file is the dynamic counterpart of the hotpathalloc analyzer: the
// static check proves no allocating construct is reachable from the
// //thanos:hotpath roots, and these tests prove the runtime agrees. The
// batched path has the same contract in TestEngineDecideBatchZeroAlloc
// (race_test.go); here we pin the two single-packet entry points.

// TestDecideZeroAlloc pins the single-packet path: Engine.Decide rides the
// same //thanos:hotpath graph through the interpreter and fallback MUX.
func TestDecideZeroAlloc(t *testing.T) {
	e := newTestEngine(t, 1, minPolicySrc)
	fillRandom(t, e, 32, 7)
	for i := 0; i < 8; i++ {
		e.Decide()
	}
	if n := testing.AllocsPerRun(100, func() { e.Decide() }); n != 0 {
		t.Fatalf("Decide allocates %.1f times per call in steady state; want 0", n)
	}
}

var allocSink int

// TestCoreDecideZeroAlloc guards the hardware-faithful path the same way:
// core.FilterModule.Decide (pipeline execution + fallback resolution) must
// be allocation-free after the first packet. It lives here rather than in
// package core so every zero-alloc contract is enforced from one file.
func TestCoreDecideZeroAlloc(t *testing.T) {
	m, err := core.New(core.Config{
		Capacity: 32,
		Schema:   testSchema,
		Policy:   policy.MustParse(minPolicySrc),
	})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 16; id++ {
		if err := m.Table().Add(id, []int64{int64(90 - id), int64(id * 100), 5000}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		m.Decide(0)
	}
	if n := testing.AllocsPerRun(100, func() {
		id, ok := m.Decide(0)
		if ok {
			allocSink = id
		}
	}); n != 0 {
		t.Fatalf("core Decide allocates %.1f times per call in steady state; want 0", n)
	}
}

// TestCoreDecideZeroAllocWithTelemetry re-pins the hardware-faithful path
// with the full instrument set attached — per-stage chain stats, decision
// counters + latency histogram, and a tracer sampling every decision. The
// telemetry acceptance criterion: observability may not cost the hot path
// a single heap allocation.
func TestCoreDecideZeroAllocWithTelemetry(t *testing.T) {
	m, err := core.New(core.Config{
		Capacity: 32,
		Schema:   testSchema,
		Policy:   policy.MustParse(minPolicySrc),
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	cs := telemetry.NewChainStats(reg, "thanos_core_chain", m.StageLabels(), 1)
	ds := telemetry.NewDecideStats(reg, "thanos_core", 1)
	m.AttachTelemetry(cs[0], ds[0], telemetry.NewTracer(1, 16, 0))
	for id := 0; id < 16; id++ {
		if err := m.Table().Add(id, []int64{int64(90 - id), int64(id * 100), 5000}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		m.Decide(0)
	}
	if n := testing.AllocsPerRun(100, func() {
		id, ok := m.Decide(0)
		if ok {
			allocSink = id
		}
	}); n != 0 {
		t.Fatalf("instrumented core Decide allocates %.1f times per call; want 0", n)
	}
	if got := ds[0].Decisions.Value(); got == 0 {
		t.Error("decision counter did not advance")
	}
	if len(m.TraceSnapshot()) == 0 {
		t.Error("tracer sampled no decisions at every-decision cadence")
	}
}
