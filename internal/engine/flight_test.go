package engine

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/policy"
	"repro/internal/smbm"
	"repro/internal/telemetry"
)

// TestEngineFlightAndQuarantineHook: a detected divergence must land an
// EventQuarantine in the flight ring and fire the OnQuarantine callback
// (off-lock, with the shard index and cause); the completed resync must land
// an EventResync; a policy hot-swap must land an EventSwap. Introspect must
// report the quarantine while it lasts and full health afterwards.
func TestEngineFlightAndQuarantineHook(t *testing.T) {
	flight := telemetry.NewSpanRing("engine", 64)
	type quar struct {
		shard int
		cause error
	}
	quarCh := make(chan quar, 1)
	e, err := New(Config{
		Shards:   2,
		Capacity: 64,
		Schema:   testSchema,
		Policy:   policy.MustParse(minPolicySrc),
		Flight:   flight,
		OnQuarantine: func(shard int, cause error) {
			quarCh <- quar{shard, cause}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	fillRandom(t, e, 16, 3)

	if err := e.CorruptReplica(1, 4); err != nil {
		t.Fatal(err)
	}
	if err := e.Update(4, []int64{9, 9, 9}); !errors.Is(err, smbm.ErrReplicaDivergence) {
		t.Fatalf("Update err = %v, want ErrReplicaDivergence", err)
	}
	q := <-quarCh
	if q.shard != 1 || q.cause == nil {
		t.Fatalf("OnQuarantine got shard=%d cause=%v", q.shard, q.cause)
	}
	waitHealth(t, e, 1, Healthy)

	if err := e.SwapPolicy(policy.MustParse(minPolicySrc)); err != nil {
		t.Fatal(err)
	}

	var sawQuar, sawResync, sawSwap bool
	for _, sp := range flight.Snapshot() {
		switch sp.Kind {
		case telemetry.EventQuarantine:
			sawQuar = true
			if sp.Arg != 1 {
				t.Errorf("EventQuarantine arg = %d, want shard 1", sp.Arg)
			}
		case telemetry.EventResync:
			sawResync = true
		case telemetry.EventSwap:
			sawSwap = true
		}
	}
	if !sawQuar || !sawResync || !sawSwap {
		t.Fatalf("flight ring missing events: quarantine=%v resync=%v swap=%v",
			sawQuar, sawResync, sawSwap)
	}

	st := e.Introspect()
	if len(st.Shards) != 2 || st.Live != 2 {
		t.Fatalf("Introspect after resync = %+v, want 2 healthy shards", st)
	}
	for si, ss := range st.Shards {
		if ss.Health != "healthy" {
			t.Errorf("shard %d health = %q after resync", si, ss.Health)
		}
		if ss.TableVersion == 0 || ss.TableSize != st.Resources {
			t.Errorf("shard %d version=%d size=%d, resources=%d",
				si, ss.TableVersion, ss.TableSize, st.Resources)
		}
	}
	if st.Shards[1].LastErr == "" || !strings.Contains(st.Shards[1].LastErr, "4") {
		t.Errorf("shard 1 last_err = %q, want the recorded divergence", st.Shards[1].LastErr)
	}
	if st.Shards[0].LastErr != "" {
		t.Errorf("shard 0 last_err = %q, want empty", st.Shards[0].LastErr)
	}
	if st.AuthVersion == 0 || st.Resources != 16 {
		t.Errorf("auth_version=%d resources=%d, want nonzero/16", st.AuthVersion, st.Resources)
	}
}

// TestEngineIntrospectDuringQuarantine: while a shard is held out of the
// serving set, Introspect must show it quarantined and Live must exclude it.
func TestEngineIntrospectDuringQuarantine(t *testing.T) {
	e, err := New(Config{
		Shards:   2,
		Capacity: 64,
		Schema:   testSchema,
		Policy:   policy.MustParse(minPolicySrc),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	fillRandom(t, e, 8, 5)
	hold := make(chan struct{})
	e.resyncFailHook = func(shard, attempt int) error {
		select {
		case <-hold:
			return nil
		default:
			return errors.New("held for the test")
		}
	}
	if err := e.CorruptReplica(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := e.Update(2, []int64{1, 1, 1}); !errors.Is(err, smbm.ErrReplicaDivergence) {
		t.Fatalf("Update err = %v", err)
	}
	st := e.Introspect()
	if st.Live != 1 {
		t.Fatalf("Live = %d during quarantine, want 1", st.Live)
	}
	if h := st.Shards[0].Health; h != "quarantined" && h != "resyncing" {
		t.Fatalf("shard 0 health = %q, want quarantined/resyncing", h)
	}
	close(hold)
	waitHealth(t, e, 0, Healthy)
}
