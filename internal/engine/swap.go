package engine

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/policy"
	"repro/internal/telemetry"
)

// SwapPolicy replaces the policy every shard executes, without stopping the
// decision path — the serving frontend's live reconfiguration primitive. It
// reuses the epoch-snapshot mechanism that table writes use: per shard, a new
// interpreter is built against each of the two existing replica tables, then
// published exactly like a write (swap the active pointer, wait for the
// reader to drain the retired epoch, replace the retired snapshot). A reader
// therefore always executes a complete program against a complete table; a
// batch racing the swap may mix old-policy and new-policy decisions, but
// every single decision is internally consistent.
//
// The new policy is validated against the engine's schema before anything is
// published; on validation or construction failure the engine keeps serving
// the old policy everywhere. Shards that are quarantined or resyncing when
// the swap lands pick the new policy up when their resync rebuilds them
// (resync always builds from the current policy).
//
// Per-step chain telemetry is labeled for the construction-time policy; when
// the swapped-in program has a different shape those counters detach from the
// affected shards (decision, table and degradation telemetry continue).
//
//thanos:wallclock flight-recorder timestamps are diagnostics, not simulation state
func (e *Engine) SwapPolicy(p *policy.Policy) error {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	select {
	case <-e.closedCh:
		return ErrClosed
	default:
	}
	if p == nil {
		return fmt.Errorf("engine: nil policy")
	}
	if err := p.Validate(e.schema); err != nil {
		return err
	}
	// Build every interpreter before publishing any: a mid-swap failure must
	// not leave some shards on the new policy and some on the old.
	type pending struct {
		s        *shard
		act, shd *policy.Interp
	}
	var plan []pending
	for si, s := range e.shards {
		if ShardHealth(s.health.Load()) != Healthy {
			continue
		}
		act := s.active.Load()
		shadow := s.other(act)
		ia, err := policy.NewInterp(act.table, e.schema, p)
		if err != nil {
			return fmt.Errorf("engine: swap policy on shard %d: %w", si, err)
		}
		is, err := policy.NewInterp(shadow.table, e.schema, p)
		if err != nil {
			return fmt.Errorf("engine: swap policy on shard %d: %w", si, err)
		}
		if s.chainTel != nil && s.chainTel.Steps() == ia.Steps() {
			ia.AttachTelemetry(s.chainTel)
			is.AttachTelemetry(s.chainTel)
		}
		plan = append(plan, pending{s: s, act: ia, shd: is})
	}
	for _, pd := range plan {
		e.swapShard(pd.s, pd.act, pd.shd, p)
	}
	// Publish the policy the partitioner validates against. pmu is taken so
	// concurrent DecideBatch partitioning (which reads e.pol under pmu) never
	// races the store; lock order wmu → pmu matches rebuildSteering.
	e.pmu.Lock()
	e.pol = p
	e.pmu.Unlock()
	e.polSwaps.Inc()
	e.flight.Event(telemetry.EventSwap, 0, time.Now().UnixNano(), int64(len(plan)))
	return nil
}

// swapShard publishes a new-policy snapshot pair on one shard via the epoch
// protocol: wrap the shadow table with its new interpreter, publish it as the
// active snapshot, wait for the reader to drain the retired epoch, then wrap
// the retired table the same way. After the spin the retired snapshot is
// unreachable (neither active nor pinned), so replacing it is safe. Caller
// holds wmu.
func (e *Engine) swapShard(s *shard, interpAct, interpShd *policy.Interp, p *policy.Policy) {
	act := s.active.Load()
	shadow := s.other(act)
	fresh := &snapshot{table: shadow.table, interp: interpShd, pol: p}
	if s.states[0] == shadow {
		s.states[0] = fresh
	} else {
		s.states[1] = fresh
	}
	s.active.Store(fresh)
	e.swaps.Inc()
	for s.inUse.Load() == act {
		e.waitSpins.Inc()
		runtime.Gosched()
	}
	retired := &snapshot{table: act.table, interp: interpAct, pol: p}
	if s.states[0] == act {
		s.states[0] = retired
	} else {
		s.states[1] = retired
	}
}
