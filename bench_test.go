// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus the design ablations DESIGN.md calls out. Each BenchmarkTableN /
// BenchmarkFigN target computes the corresponding experiment (the network
// figures at reduced scale so `go test -bench=.` stays tractable; the
// full-scale numbers come from cmd/thanosbench and are recorded in
// EXPERIMENTS.md).
package thanos_test

import (
	"math/rand"
	"sort"
	"testing"

	thanos "repro"
	"repro/internal/asic"
	"repro/internal/benes"
	"repro/internal/bitvec"
	"repro/internal/experiments"
	"repro/internal/experiments/runner"
	"repro/internal/lb"
	"repro/internal/pipeline"
	"repro/internal/policy"
	"repro/internal/smbm"
)

// BenchmarkTable1_SMBM regenerates Table 1: SMBM area/clock across the
// published (N, m) grid.
func BenchmarkTable1_SMBM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table1()
		if len(res.Rows) != 12 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkTable2_FPU regenerates Table 2: UFPU/BFPU area/clock vs N.
func BenchmarkTable2_FPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table2()
		if len(res.Rows) != 8 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkTable3_Cell regenerates Table 3: Cell area/clock vs K.
func BenchmarkTable3_Cell(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table3()
		if len(res.Rows) != 4 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkTable4_Pipeline regenerates Table 4: pipeline area/clock vs n, k.
func BenchmarkTable4_Pipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table4()
		if len(res.Rows) != 9 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkTable5_PolicyCompile regenerates Table 5: compiling the five
// example policies onto the pipeline (placement + Benes routing).
func BenchmarkTable5_PolicyCompile(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table5()
		if err != nil || len(res.Entries) != 5 {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig16_L4LB runs the Figure 16 experiment (reduced query count):
// resource-aware vs random placement on the same workload.
func BenchmarkFig16_L4LB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig16(lb.DefaultClusterConfig(1), 400)
		if err != nil {
			b.Fatal(err)
		}
		if res.MedianRatio > 1.2 {
			b.Fatalf("median ratio %.2f out of band", res.MedianRatio)
		}
	}
}

// BenchmarkFig17_Routing runs the Figure 17 experiment at reduced scale:
// three routing policies at one load.
func BenchmarkFig17_Routing(b *testing.B) {
	cfg := experiments.DefaultNetConfig(3)
	cfg.Flows = 80
	cfg.SizeScale = 0.05
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig17(cfg, []float64{0.8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig17_RoutingParallel is BenchmarkFig17_Routing with the
// (policy, load) grid fanned across CPUs by the sweep runner. Results are
// identical to the serial run; wall-clock shrinks with available cores (on a
// single-CPU machine it matches the serial benchmark).
func BenchmarkFig17_RoutingParallel(b *testing.B) {
	cfg := experiments.DefaultNetConfig(3)
	cfg.Flows = 80
	cfg.SizeScale = 0.05
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig17With(cfg, []float64{0.8}, runner.NewPool()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig18_DRILL runs the Figure 18 experiment at reduced scale:
// ECMP vs min-queue vs DRILL at one load.
func BenchmarkFig18_DRILL(b *testing.B) {
	cfg := experiments.DefaultNetConfig(4)
	cfg.Flows = 80
	cfg.SizeScale = 0.05
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig18(cfg, []float64{0.8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig19_Caching runs the Figure 19 experiment at reduced scale:
// in-network caching of popular graph filter queries.
func BenchmarkFig19_Caching(b *testing.B) {
	cfg := experiments.DefaultFig19Config(6)
	cfg.Queries = 400
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig19(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.HitFraction == 0 {
			b.Fatal("no cache hits")
		}
	}
}

// BenchmarkFilterModuleDecide measures the end-to-end per-packet decision
// on the compiled pipeline (the paper's default design point, 128-entry
// table).
func BenchmarkFilterModuleDecide(b *testing.B) {
	m, err := thanos.NewFilterModule(thanos.ModuleConfig{
		Capacity: 128,
		Schema:   thanos.Schema{Attrs: []string{"cpu", "mem", "bw"}},
		Policy: thanos.MustParsePolicy(`
let ok = intersect(filter(table, cpu < 70), filter(table, mem > 1024), filter(table, bw > 2000))
out primary = random(ok)
out backup  = random(table)
fallback primary -> backup
`),
	})
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	for id := 0; id < 128; id++ {
		if err := m.Table().Add(id, []int64{int64(r.Intn(100)), int64(r.Intn(8192)), int64(r.Intn(10000))}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := m.Decide(0); !ok {
			b.Fatal("no decision")
		}
	}
}

// BenchmarkAblationSorted compares min-finding on the SMBM's sorted
// dimension (a priority encode over the masked list) against a linear scan
// of an unsorted array — the data-structure choice §5.1.1 motivates.
func BenchmarkAblationSorted(b *testing.B) {
	const n = 512
	table := smbm.New(n, 1)
	vals := make([]int64, n)
	r := rand.New(rand.NewSource(7))
	for id := 0; id < n; id++ {
		vals[id] = int64(r.Intn(1 << 20))
		if err := table.Add(id, []int64{vals[id]}); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("smbm-sorted-dim", func(b *testing.B) {
		d := table.Dim(0)
		for i := 0; i < b.N; i++ {
			if d.ID(0) < 0 { // min = head of the sorted dimension
				b.Fatal("impossible")
			}
		}
	})
	b.Run("unsorted-linear-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			best, bestV := -1, int64(1<<62)
			for id, v := range vals {
				if v < bestV {
					best, bestV = id, v
				}
			}
			if best < 0 {
				b.Fatal("impossible")
			}
		}
	})
}

// BenchmarkAblationEncoding compares the bit-vector table encoding (word-
// wise set operations, §5.2.2) against sorted id-list merging.
func BenchmarkAblationEncoding(b *testing.B) {
	const n = 512
	r := rand.New(rand.NewSource(9))
	va, vb := bitvec.New(n), bitvec.New(n)
	var la, lbs []int
	for i := 0; i < n; i++ {
		if r.Intn(2) == 0 {
			va.Set(i)
			la = append(la, i)
		}
		if r.Intn(2) == 0 {
			vb.Set(i)
			lbs = append(lbs, i)
		}
	}
	b.Run("bitvector-and", func(b *testing.B) {
		out := bitvec.New(n)
		for i := 0; i < b.N; i++ {
			out.And(va, vb)
		}
	})
	b.Run("idlist-merge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out := make([]int, 0, len(la))
			x, y := 0, 0
			for x < len(la) && y < len(lbs) {
				switch {
				case la[x] == lbs[y]:
					out = append(out, la[x])
					x++
					y++
				case la[x] < lbs[y]:
					x++
				default:
					y++
				}
			}
			sort.Ints(out) // keep the comparison honest about output form
		}
	})
}

// BenchmarkAblationCrossbar measures Benes-network routing cost (the
// compile-time step §5.3.2 trades for half the wiring area of a monolithic
// crossbar).
func BenchmarkAblationCrossbar(b *testing.B) {
	for _, n := range []int{8, 16, 64} {
		nw, err := benes.New(n)
		if err != nil {
			b.Fatal(err)
		}
		r := rand.New(rand.NewSource(3))
		perm := r.Perm(n)
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := nw.Route(perm); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sizeName(n int) string {
	switch n {
	case 8:
		return "n8"
	case 16:
		return "n16"
	default:
		return "n64"
	}
}

// BenchmarkPolicyCompileDefault measures compiling the Figure 14 policy
// onto the default pipeline.
func BenchmarkPolicyCompileDefault(b *testing.B) {
	pol := policy.MustParse(lb.PolicyResourceAware)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := policy.Compile(pol, lb.Schema, pipeline.DefaultParams()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSMBMUpdate measures the probe-processing write path (delete +
// add, 4 cycles in hardware) at the paper's default table size.
func BenchmarkSMBMUpdate(b *testing.B) {
	table := smbm.New(128, 4)
	r := rand.New(rand.NewSource(5))
	for id := 0; id < 128; id++ {
		if err := table.Add(id, []int64{int64(r.Intn(1000)), int64(r.Intn(1000)), int64(r.Intn(1000)), int64(r.Intn(1000))}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := i % 128
		if err := table.Update(id, []int64{int64(i % 997), 1, 2, 3}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAsicModel covers the analytic-model hot path used across the
// tables.
func BenchmarkAsicModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = asic.PipelineArea(128, 8, 8, 4, 2)
		_ = asic.SMBMArea(512, 8)
		_ = asic.SMBMClockGHz(512, 8)
	}
}

// benchVectors builds a deterministic pair of 512-bit vectors (~50% and
// ~33% dense) for the kernel microbenchmarks below.
func benchVectors() (a, b *bitvec.Vector) {
	const n = 512
	r := rand.New(rand.NewSource(9))
	a, b = bitvec.New(n), bitvec.New(n)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 0 {
			a.Set(i)
		}
		if r.Intn(3) == 0 {
			b.Set(i)
		}
	}
	return a, b
}

// BenchmarkBitvec* track the word-parallel kernels individually; the same
// workloads are pinned in the perfcheck checkpoint set.

func BenchmarkBitvecAnd(b *testing.B) {
	x, y := benchVectors()
	out := bitvec.New(x.Len())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.And(x, y)
	}
}

func BenchmarkBitvecOr(b *testing.B) {
	x, y := benchVectors()
	out := bitvec.New(x.Len())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.Or(x, y)
	}
}

func BenchmarkBitvecCount(b *testing.B) {
	x, _ := benchVectors()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if x.Count() == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkBitvecFirstSet(b *testing.B) {
	x, _ := benchVectors()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if x.FirstSet() < 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkBitvecNextSetCyclic(b *testing.B) {
	x, _ := benchVectors()
	n := x.Len()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if x.NextSetCyclic(i%n) < 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkBitvecRank(b *testing.B) {
	x, _ := benchVectors()
	n := x.Len()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Rank(i % (n + 1))
	}
}

func BenchmarkBitvecSelect(b *testing.B) {
	x, _ := benchVectors()
	c := x.Count()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if x.Select(i%c) < 0 {
			b.Fatal("select out of range")
		}
	}
}

func BenchmarkBitvecAndFirstSet(b *testing.B) {
	x, y := benchVectors()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bitvec.AndFirstSet(x, y) < 0 {
			b.Fatal("empty intersection")
		}
	}
}

func BenchmarkBitvecAndNextSetCyclic(b *testing.B) {
	x, y := benchVectors()
	n := x.Len()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bitvec.AndNextSetCyclic(x, y, i%n) < 0 {
			b.Fatal("empty intersection")
		}
	}
}

func BenchmarkBitvecAndInto(b *testing.B) {
	x, y := benchVectors()
	z := bitvec.New(x.Len())
	z.Or(x, y)
	out := bitvec.New(x.Len())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.AndInto(x, y, z)
	}
}
