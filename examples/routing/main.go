// Performance-aware routing (§7.2.3): a leaf switch in a two-tier Clos
// picks an uplink per flow using the multi-dimensional Policy 3 — paths
// simultaneously among the top-X least queued, least lossy and least
// utilized, then the least utilized of those — compared live against
// per-flow ECMP on the same traffic.
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	cfg := experiments.DefaultNetConfig(7)
	cfg.Flows = 200
	cfg.SizeScale = 0.2

	fmt.Printf("two-tier Clos: %d leaves x %d hosts, %d spines, web-search flows at 80%% load\n",
		cfg.Leaves, cfg.HostsPerLeaf, cfg.Spines)

	for _, pol := range []experiments.RoutingPolicy{
		experiments.RouteECMP, experiments.RouteMinUtil, experiments.RouteMultiDim,
	} {
		net, err := experiments.BuildRouting(cfg, pol)
		if err != nil {
			log.Fatal(err)
		}
		if err := offer(cfg, net); err != nil {
			log.Fatal(err)
		}
		deadline := sim.Time(0)
		for net.ActiveFlows() > 0 {
			deadline += 100 * sim.Millisecond
			net.Sched.RunUntil(deadline)
		}
		var fct stats.Sample
		for _, rec := range net.Records() {
			fct.Add(float64(rec.FCT()) / float64(sim.Microsecond))
		}
		fmt.Printf("  %-18s mean FCT %6.0f µs   p99 %7.0f µs\n",
			pol, fct.Mean(), fct.Percentile(99))
	}
}

func offer(cfg experiments.NetConfig, net interface {
	StartFlow(src, dst int, bytes int64, at sim.Time) (int64, error)
}) error {
	// Deterministic all-to-all mix: every host sends to a rotating set of
	// peers so both policies see identical traffic.
	hosts := cfg.Leaves * cfg.HostsPerLeaf
	at := sim.Time(0)
	for i := 0; i < cfg.Flows; i++ {
		src := i % hosts
		dst := (src + 1 + i/hosts) % hosts
		if dst == src {
			dst = (dst + 1) % hosts
		}
		size := int64(15000 + 40000*(i%7))
		if _, err := net.StartFlow(src, dst, size, at); err != nil {
			return err
		}
		at += 40 * sim.Microsecond
	}
	return nil
}
