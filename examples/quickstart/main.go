// Quickstart: build a Thanos filter module for resource-aware L4 load
// balancing (Policy 2 of §7.2.2), feed it server metrics as probe
// processing would, and make per-packet placement decisions at line rate.
package main

import (
	"fmt"
	"log"

	thanos "repro"
)

func main() {
	module, err := thanos.NewFilterModule(thanos.ModuleConfig{
		Capacity: 64,
		Schema:   thanos.Schema{Attrs: []string{"cpu", "mem", "bw"}},
		Policy: thanos.MustParsePolicy(`
policy resource_aware_lb
let ok = intersect(filter(table, cpu < 70),
                   filter(table, mem > 1024),
                   filter(table, bw > 2000))
out primary = random(ok)
out backup  = random(table)
fallback primary -> backup
`),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Install servers: id, [cpu %, free memory MB, free bandwidth Mb/s].
	servers := map[int][]int64{
		0: {35, 6000, 8000}, // healthy
		1: {88, 6000, 8000}, // CPU-hot
		2: {25, 512, 8000},  // memory-starved
		3: {40, 3000, 4000}, // healthy
	}
	for id, metrics := range servers {
		if err := module.Table().Add(id, metrics); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("filter module: %d-entry table, %d-cycle pipeline (%.1f ns at %.2f GHz), %.3f mm²\n",
		module.Table().Capacity(), module.LatencyCycles(),
		module.LatencyAtGHz(module.ClockGHz()), module.ClockGHz(), module.AreaMM2())

	counts := map[int]int{}
	for pkt := 0; pkt < 1000; pkt++ {
		server, ok := module.Decide(0)
		if !ok {
			log.Fatal("no server available")
		}
		counts[server]++
	}
	// Note the skew between the two eligible servers: the paper's random
	// unit (LFSR index + priority encoder on the next valid entry, §5.2.1)
	// is uniform over dense tables but gap-weighted over sparse filtered
	// subsets — a property of the published datapath this reproduction
	// preserves (see DESIGN.md).
	fmt.Println("placements over 1000 new connections (only healthy servers 0 and 3 are eligible):")
	for id := 0; id < 4; id++ {
		fmt.Printf("  server %d: %d\n", id, counts[id])
	}

	// A probe reports server 0 degraded: update its row, decisions follow.
	if err := module.Table().Update(0, []int64{95, 6000, 8000}); err != nil {
		log.Fatal(err)
	}
	server, _ := module.Decide(0)
	fmt.Printf("after server 0 degrades, next placement: server %d\n", server)
}
