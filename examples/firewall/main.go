// Network diagnosis and firewall (Figures 5 and 6 of the paper): the
// resource table holds per-source-IP flow statistics maintained by RMT
// counters; one query filters every source whose packet rate exceeds a
// threshold (diagnosis), and a second policy blacklists all sources sending
// to a destination under attack (firewall). Both run as table-wide filters
// — exactly what plain RMT register arrays cannot express (§2.2).
package main

import (
	"fmt"
	"log"

	thanos "repro"
)

func main() {
	// One resource per tracked flow aggregate: attributes are the packet
	// rate (pps), the destination id the source talks to, and bytes sent.
	module, err := thanos.NewModule(256,
		thanos.Schema{Attrs: []string{"rate", "dst", "bytes"}},
		thanos.MustParsePolicy(`
policy diagnose_and_firewall
# Figure 5: filter all entries with packet rate > 10000 pps.
out hot     = filter(table, rate > 10000)
# Figure 6: if a destination (id 42) is under attack, filter every source
# sending to it, to be black-listed by the RMT stage that follows.
out attack  = intersect(filter(table, dst == 42), filter(table, rate > 1000))
`))
	if err != nil {
		log.Fatal(err)
	}

	// Populate from "RMT counters": flows 0..9 are background traffic; 3
	// and 7 are heavy hitters; 5, 7 and 9 all target destination 42.
	type flowStat struct{ rate, dst, bytes int64 }
	flows := map[int]flowStat{
		0: {500, 10, 1 << 20},
		1: {900, 11, 2 << 20},
		2: {4000, 12, 8 << 20},
		3: {25000, 13, 64 << 20}, // heavy hitter
		4: {100, 14, 1 << 18},
		5: {3000, 42, 4 << 20}, // targets 42
		6: {800, 15, 1 << 20},
		7: {90000, 42, 1 << 30}, // heavy hitter targeting 42
		8: {1200, 16, 2 << 20},
		9: {2500, 42, 3 << 20}, // targets 42
	}
	for id, st := range flows {
		if err := module.Upsert(id, []int64{st.rate, st.dst, st.bytes}); err != nil {
			log.Fatal(err)
		}
	}

	outs := module.Exec()
	fmt.Printf("diagnosis — sources with rate > 10000 pps: %v\n", outs[0].IDs())
	fmt.Printf("firewall  — sources attacking destination 42 (rate > 1000): %v\n", outs[1].IDs())

	// The attack subsides for flow 9; the next packet's filtering reflects
	// the updated counter immediately.
	if err := module.Upsert(9, []int64{50, 42, 3 << 20}); err != nil {
		log.Fatal(err)
	}
	outs = module.Exec()
	fmt.Printf("after flow 9 slows down, blacklist: %v\n", outs[1].IDs())
}
