// In-network caching of graph filter queries (§7.2.5): a leaf switch
// caches the most popular course nodes of a graph database in its SMBM and
// answers the most popular filter queries with its filter pipeline; every
// cached answer is verified exact against the server-side engine, then the
// Figure 19 experiment quantifies the latency win.
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/graphdb"
)

func main() {
	// Build the database (a synthetic course catalog) and a query catalog.
	g, err := graphdb.SyntheticCatalog(11, 300)
	if err != nil {
		log.Fatal(err)
	}
	qc, err := graphdb.NewQueryCatalog(22, 32)
	if err != nil {
		log.Fatal(err)
	}

	// Offline trace analysis found kinds 0..7 most popular: cache them.
	cache := graphdb.NewCache(200)
	installed, err := cache.InstallFor(g, qc, []int{0, 1, 2, 3, 4, 5, 6, 7})
	if err != nil {
		log.Fatal(err)
	}
	if err := cache.VerifyAgainst(g, qc); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cached %d nodes, installed query kinds %v (all verified exact)\n",
		cache.Len(), installed)

	// Show one cached query answered at the switch.
	if ids, ok := cache.Lookup(installed[0]); ok {
		fmt.Printf("query kind %d answered from the switch: %d matching courses\n",
			installed[0], len(ids))
	}
	// Graph navigation stays on the server: prerequisite closure of the
	// first cached course.
	if ids, ok := cache.Lookup(installed[0]); ok && len(ids) > 0 {
		fmt.Printf("prerequisite closure of course %d: %v\n",
			ids[0], g.PrereqClosure(ids[0]))
	}

	// Quantify: the Figure 19 experiment on a smaller query stream.
	cfg := experiments.DefaultFig19Config(11)
	cfg.Queries = 1000
	res, err := experiments.Fig19(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cache hit fraction: %.0f%%\n", 100*res.HitFraction)
	fmt.Printf("cached-query speedup: %.1fx – %.1fx (paper band: 2.8x – 4x)\n",
		res.CachedGainMin, res.CachedGainMax)
}
